// Ablation — multi-step forecasting strategies: recursive roll-out (feed
// each prediction back, the natural extension of the paper's one-step model)
// vs a direct multi-output head trained to emit all H steps at once.
//
// Expected shape: at horizon 1 the strategies tie; as the horizon grows the
// recursive roll-out accumulates its own errors while the direct model
// degrades more gracefully on noisy workloads.
#include <cstdio>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "core/loaddynamics.hpp"
#include "core/multistep.hpp"

int main(int argc, char** argv) {
  using namespace ld;
  const cli::Args args(argc, argv);
  const bench::ExperimentScale scale = bench::ExperimentScale::from_args(args);

  std::printf("=== Ablation: recursive vs direct multi-step forecasting ===\n");
  const auto w = bench::PreparedWorkload::make(workloads::TraceKind::kGoogle, 30, scale);

  // Architecture from one BO search; both strategies share it.
  const core::LoadDynamicsConfig cfg =
      scale.loaddynamics_config(workloads::TraceKind::kGoogle);
  const core::LoadDynamics framework(cfg);
  const core::FitResult fit = framework.fit(w.split.train, w.split.validation);
  const core::Hyperparameters hp = fit.best_record().hyperparameters;
  std::printf("architecture: %s\n\n", hp.to_string().c_str());

  std::printf("%-10s%18s%16s\n", "horizon", "recursive MAPE %", "direct MAPE %");
  std::vector<std::vector<double>> csv_rows;
  for (const std::size_t horizon : {1u, 3u, 6u, 12u}) {
    const core::DirectMultiStepModel direct(w.split.train, w.split.validation, horizon, hp,
                                            cfg.training, cfg.seed);
    // Evaluate both on non-overlapping H-blocks of the test span,
    // teacher-forced context between blocks.
    std::vector<double> actual, rec_preds, dir_preds;
    const std::size_t start = w.split.test_start();
    for (std::size_t off = 0; off + horizon <= w.split.test.size(); off += horizon) {
      const std::span<const double> context(w.series.data(), start + off);
      const auto r = fit.predictor().predict_horizon(context, horizon);
      const auto d = direct.predict(context);
      for (std::size_t h = 0; h < horizon; ++h) {
        actual.push_back(w.split.test[off + h]);
        rec_preds.push_back(r[h]);
        dir_preds.push_back(d[h]);
      }
    }
    const double rec_mape = metrics::mape(actual, rec_preds);
    const double dir_mape = metrics::mape(actual, dir_preds);
    std::printf("%-10zu%18.2f%16.2f\n", horizon, rec_mape, dir_mape);
    csv_rows.push_back({static_cast<double>(horizon), rec_mape, dir_mape});
  }

  std::printf(
      "\nReading the result: on smooth traces a well-tuned one-step model rolled\n"
      "out recursively is a strong baseline — error compounding only dominates on\n"
      "noisy workloads/long horizons, where the direct head catches up. Either\n"
      "way the gap quantifies how far one-step tuning (the paper's setting)\n"
      "carries into multi-interval provisioning.\n");
  bench::maybe_write_csv(scale, "ablation_multistep.csv",
                         {"horizon", "recursive", "direct"}, csv_rows);
  return 0;
}
