#include "bench_common.hpp"

#include <filesystem>

#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"

namespace ld::bench {

ExperimentScale ExperimentScale::from_args(const cli::Args& args) {
  ExperimentScale scale;
  scale.full = args.get_bool("full", false) && !args.get_bool("quick", false);
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  scale.out_dir = args.get("out", "");
  return scale;
}

double ExperimentScale::days_for_interval(std::size_t interval_minutes) const {
  // Keep the interval count comparable across granularities; full mode uses
  // ~4x longer traces (the real traces are weeks long).
  const double base = [&] {
    switch (interval_minutes) {
      case 5: return 3.0;
      case 10: return 6.0;
      case 30: return 12.0;
      case 60: return 24.0;
      default: return 12.0;
    }
  }();
  return full ? base * 4.0 : base;
}

core::LoadDynamicsConfig ExperimentScale::loaddynamics_config(workloads::TraceKind kind) const {
  core::LoadDynamicsConfig cfg;
  if (full) {
    cfg.space = kind == workloads::TraceKind::kFacebook
                    ? core::HyperparameterSpace::paper_facebook()
                    : core::HyperparameterSpace::paper_default();
    cfg.max_iterations = 100;  // maxIters of Section IV-A
    cfg.initial_random = 5;
    cfg.training.trainer.max_epochs = 60;
    cfg.training.trainer.patience = 10;
  } else {
    cfg.space = core::HyperparameterSpace::reduced();
    if (kind == workloads::TraceKind::kFacebook) {
      // Facebook's trace is one day; keep windows small like Table III does.
      cfg.space.history_max = 24;
      cfg.space.batch_max = 64;
    }
    cfg.max_iterations = 12;
    cfg.initial_random = 5;
    cfg.training.trainer.max_epochs = 30;
    cfg.training.trainer.patience = 7;
  }
  cfg.training.trainer.learning_rate = 1e-2;
  cfg.training.trainer.min_updates = 400;  // short traces (FB) get extra epochs
  cfg.training.max_train_windows = full ? 6000 : 1500;
  cfg.seed = seed;
  return cfg;
}

std::string workload_label(workloads::TraceKind kind, std::size_t interval) {
  const char* prefix = [&] {
    switch (kind) {
      case workloads::TraceKind::kWikipedia: return "Wiki";
      case workloads::TraceKind::kGoogle: return "GL";
      case workloads::TraceKind::kFacebook: return "FB";
      case workloads::TraceKind::kAzure: return "AZ";
      case workloads::TraceKind::kLcg: return "LCG";
    }
    return "?";
  }();
  return std::string(prefix) + "-" + std::to_string(interval);
}

PreparedWorkload PreparedWorkload::make(workloads::TraceKind kind, std::size_t interval_minutes,
                                        const ExperimentScale& scale, double trace_scale) {
  PreparedWorkload w;
  w.trace = workloads::generate(
      kind, interval_minutes,
      {.days = scale.days_for_interval(interval_minutes), .seed = scale.seed,
       .scale = trace_scale});
  w.split = workloads::split_trace(w.trace);
  w.series = w.split.all();
  w.label = workload_label(kind, interval_minutes);
  return w;
}

std::vector<double> baseline_test_predictions(ts::Predictor& predictor,
                                              const PreparedWorkload& w,
                                              std::size_t refit_every) {
  return ts::walk_forward(predictor, w.series, w.split.test_start(),
                          {.refit_every = refit_every});
}

double baseline_test_mape(ts::Predictor& predictor, const PreparedWorkload& w,
                          std::size_t refit_every) {
  const auto preds = baseline_test_predictions(predictor, w, refit_every);
  return metrics::mape(w.split.test, preds);
}

double model_test_mape(const core::TrainedModel& model, const PreparedWorkload& w) {
  const auto preds = model.predict_series(w.series, w.split.test_start());
  return metrics::mape(w.split.test, preds);
}

void print_table_header(const std::vector<std::string>& columns, std::size_t first_width,
                        std::size_t width) {
  std::printf("%-*s", static_cast<int>(first_width), "");
  for (const auto& col : columns) std::printf("%*s", static_cast<int>(width), col.c_str());
  std::printf("\n");
}

void print_table_row(const std::string& label, const std::vector<double>& values,
                     std::size_t first_width, std::size_t width, int precision) {
  std::printf("%-*s", static_cast<int>(first_width), label.c_str());
  for (const double v : values)
    std::printf("%*.*f", static_cast<int>(width), precision, v);
  std::printf("\n");
}

void parallel_over_workloads(std::size_t count, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(0, count, fn);
}

void maybe_write_csv(const ExperimentScale& scale, const std::string& filename,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  if (scale.out_dir.empty()) return;
  std::filesystem::create_directories(scale.out_dir);
  csv::write_file(scale.out_dir + "/" + filename, header, rows);
  std::printf("  [wrote %s/%s]\n", scale.out_dir.c_str(), filename.c_str());
}

}  // namespace ld::bench
