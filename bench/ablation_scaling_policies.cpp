// Ablation — scaling-policy study on the event-driven simulator: how does
// the paper's predictive policy (driven by LoadDynamics) compare against a
// reactive rule, static provisioning and the oracle, on realistic in-
// interval arrivals rather than the paper's all-at-start simplification?
//
// Expected shape: oracle <= predictive < reactive on wait/turnaround at
// comparable cost; static provisioning trades cost against latency depending
// on its level; spreading arrivals softens but does not remove the ordering.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "cloudsim/simulator.hpp"
#include "core/loaddynamics.hpp"
#include "timeseries/smoothing.hpp"

int main(int argc, char** argv) {
  using namespace ld;
  const cli::Args args(argc, argv);
  const bench::ExperimentScale scale = bench::ExperimentScale::from_args(args);

  std::printf("=== Ablation: scaling policies on the event-driven simulator ===\n");
  const auto w = bench::PreparedWorkload::make(workloads::TraceKind::kAzure, 60, scale,
                                               /*trace_scale=*/0.01);

  // Train LoadDynamics once; its frozen predictor drives the predictive policy.
  const core::LoadDynamics framework(scale.loaddynamics_config(workloads::TraceKind::kAzure));
  const core::FitResult fit = framework.fit(w.split.train, w.split.validation);
  std::printf("predictor: %s (validation MAPE %.1f%%)\n\n",
              fit.best_record().hyperparameters.to_string().c_str(),
              fit.best_record().validation_mape);

  const std::vector<double> demand(w.split.test.begin(), w.split.test.end());
  double fixed_level = 0.0;
  for (const double d : demand) fixed_level = std::max(fixed_level, d);

  cloudsim::DesConfig cfg;
  cfg.interval_seconds = 3600.0;
  cfg.vm_boot_seconds = 100.0;
  cfg.job_service_mean = 300.0;
  cfg.job_service_cv = 0.1;
  cfg.seed = scale.seed;

  std::vector<std::vector<double>> csv_rows;
  for (const auto arrivals :
       {cloudsim::ArrivalPattern::kAllAtStart, cloudsim::ArrivalPattern::kPoisson}) {
    cfg.arrivals = arrivals;
    std::printf("--- arrivals: %s ---\n",
                arrivals == cloudsim::ArrivalPattern::kAllAtStart ? "all-at-start (paper)"
                                                                  : "poisson-in-interval");
    std::printf("%-26s%12s%14s%12s%12s\n", "policy", "wait s", "turnaround s", "util %",
                "cost $");

    auto report = [&](cloudsim::ScalingPolicy& policy) {
      const auto result = cloudsim::run_simulation(policy, demand, cfg);
      std::printf("%-26s%12.1f%14.1f%12.1f%12.2f\n", policy.name().c_str(),
                  result.mean_wait, result.mean_turnaround,
                  100.0 * result.mean_utilization, result.total_cost);
      csv_rows.push_back({static_cast<double>(arrivals == cloudsim::ArrivalPattern::kPoisson),
                          result.mean_wait, result.mean_turnaround,
                          result.mean_utilization, result.total_cost});
    };

    cloudsim::PredictivePolicy predictive(fit.model);
    report(predictive);
    {
      auto wma = std::make_shared<ts::WmaPredictor>(6);
      cloudsim::PredictivePolicy wma_policy(wma, /*refit_every=*/5);
      report(wma_policy);
    }
    cloudsim::ReactivePolicy reactive(1.1);
    report(reactive);
    cloudsim::FixedPolicy fixed(static_cast<std::size_t>(fixed_level));
    report(fixed);
    cloudsim::OraclePolicy oracle(demand);
    report(oracle);
    std::printf("\n");
  }

  bench::maybe_write_csv(scale, "ablation_policies.csv",
                         {"poisson", "wait", "turnaround", "utilization", "cost"}, csv_rows);
  return 0;
}
