// Ablation — quantile provisioning: instead of forecasting the *mean* next
// JAR and padding it with ad-hoc headroom, train the same LSTM under a
// pinball loss so it directly forecasts an upper quantile (P80/P90), and
// provision against that.
//
// Expected shape: as the provisioning target moves from mean -> P80 -> P90,
// under-provisioning (and thus turnaround) falls monotonically while
// over-provisioning (cost) rises — and a quantile model dominates the naive
// "mean + fixed headroom" at matched over-provisioning levels.
#include <cstdio>

#include "bench_common.hpp"
#include "cloudsim/autoscaler.hpp"
#include "common/metrics.hpp"
#include "core/loaddynamics.hpp"

int main(int argc, char** argv) {
  using namespace ld;
  const cli::Args args(argc, argv);
  const bench::ExperimentScale scale = bench::ExperimentScale::from_args(args);

  std::printf("=== Ablation: mean+headroom vs quantile-forecast provisioning ===\n");
  const auto w = bench::PreparedWorkload::make(workloads::TraceKind::kAzure, 60, scale,
                                               /*trace_scale=*/0.01);

  // One BO search under MSE picks the architecture; quantile variants reuse
  // those hyperparameters with a pinball training objective.
  const core::LoadDynamicsConfig base_cfg =
      scale.loaddynamics_config(workloads::TraceKind::kAzure);
  const core::LoadDynamics framework(base_cfg);
  const core::FitResult fit = framework.fit(w.split.train, w.split.validation);
  const core::Hyperparameters hp = fit.best_record().hyperparameters;
  std::printf("architecture: %s\n\n", hp.to_string().c_str());

  cloudsim::AutoScalerConfig sim_cfg;
  sim_cfg.vm.startup_seconds = 100.0;
  sim_cfg.vm.job_service_mean = 300.0;
  sim_cfg.vm.job_service_cv = 0.1;
  sim_cfg.seed = scale.seed;

  std::printf("%-22s%12s%14s%12s%12s\n", "provisioning", "MAPE %", "turnaround s", "under %",
              "over %");
  std::vector<std::vector<double>> csv_rows;

  auto report = [&](const std::string& name, const std::vector<double>& preds) {
    const auto sim = cloudsim::simulate(preds, w.split.test, sim_cfg);
    const double mape = metrics::mape(w.split.test, preds);
    std::printf("%-22s%12.1f%14.1f%12.1f%12.1f\n", name.c_str(), mape, sim.avg_turnaround(),
                sim.under_provisioning_rate(), sim.over_provisioning_rate());
    csv_rows.push_back({mape, sim.avg_turnaround(), sim.under_provisioning_rate(),
                        sim.over_provisioning_rate()});
  };

  // Mean forecast (the paper's policy) and fixed-headroom variants.
  const std::vector<double> mean_preds =
      fit.predictor().predict_series(w.series, w.split.test_start());
  report("mean", mean_preds);
  for (const double headroom : {0.1, 0.2}) {
    std::vector<double> padded = mean_preds;
    for (double& p : padded) p *= 1.0 + headroom;
    report("mean +" + std::to_string(static_cast<int>(headroom * 100)) + "% headroom", padded);
  }

  // Quantile forecasts: same architecture, pinball objective.
  for (const double tau : {0.8, 0.9}) {
    core::ModelTrainingConfig training = base_cfg.training;
    training.trainer.loss = nn::Loss::kPinball;
    training.trainer.pinball_tau = tau;
    core::Hyperparameters qhp = hp;
    qhp.loss = nn::Loss::kPinball;
    const core::TrainedModel model(w.split.train, w.split.validation, qhp, training,
                                   base_cfg.seed);
    const std::vector<double> preds = model.predict_series(w.series, w.split.test_start());
    report("pinball P" + std::to_string(static_cast<int>(tau * 100)), preds);
  }

  std::printf(
      "\nExpected shape: moving to upper quantiles trades over-provisioning for\n"
      "lower under-provisioning and faster turnaround; the quantile model should\n"
      "use its risk budget more efficiently than flat headroom.\n");
  bench::maybe_write_csv(scale, "ablation_quantile.csv",
                         {"mape", "turnaround", "under", "over"}, csv_rows);
  return 0;
}
