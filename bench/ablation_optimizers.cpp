// Ablation — Section III-A's design discussion: Bayesian Optimization vs
// random search vs grid search for hyperparameter selection.
//
// Paper claims: grid search is less effective than BO at equal budget;
// random search can match BO's accuracy but typically needs more time.
// This bench runs all three strategies with the same evaluation budget on
// the Google workload and prints the incumbent (best-so-far) curves.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/loaddynamics.hpp"

int main(int argc, char** argv) {
  using namespace ld;
  const cli::Args args(argc, argv);
  const bench::ExperimentScale scale = bench::ExperimentScale::from_args(args);

  std::printf("=== Ablation: BO vs random vs grid search (Google, 30-min) ===\n");

  const auto w = bench::PreparedWorkload::make(workloads::TraceKind::kGoogle, 30, scale);

  struct Strategy {
    const char* name;
    core::SearchStrategy strategy;
  };
  const Strategy strategies[] = {{"bayesian", core::SearchStrategy::kBayesian},
                                 {"random", core::SearchStrategy::kRandom},
                                 {"grid", core::SearchStrategy::kGrid}};

  std::vector<std::vector<double>> csv_rows;
  std::printf("%-10s%14s%14s%16s\n", "strategy", "best MAPE %", "seconds", "iterations");
  std::vector<std::vector<double>> curves;
  for (const Strategy& s : strategies) {
    core::LoadDynamicsConfig cfg = scale.loaddynamics_config(workloads::TraceKind::kGoogle);
    cfg.strategy = s.strategy;
    const core::LoadDynamics framework(cfg);
    Stopwatch watch;
    const core::FitResult fit = framework.fit(w.split.train, w.split.validation);
    const double seconds = watch.seconds();
    std::printf("%-10s%14.2f%14.1f%16zu\n", s.name, fit.best_record().validation_mape,
                seconds, fit.database.size());
    curves.push_back(fit.incumbent_trace());
  }

  std::printf("\nincumbent best-so-far validation MAPE by iteration:\n");
  std::printf("%-6s%14s%14s%14s\n", "iter", "bayesian", "random", "grid");
  std::size_t longest = 0;
  for (const auto& c : curves) longest = std::max(longest, c.size());
  for (std::size_t i = 0; i < longest; ++i) {
    std::printf("%-6zu", i + 1);
    std::vector<double> row{static_cast<double>(i + 1)};
    for (const auto& c : curves) {
      const double v = i < c.size() ? c[i] : c.back();
      std::printf("%14.2f", v);
      row.push_back(v);
    }
    std::printf("\n");
    csv_rows.push_back(std::move(row));
  }

  std::printf(
      "\nExpected shape (paper): BO reaches a low error in fewer evaluations than\n"
      "grid search; random search is competitive but less sample-efficient.\n");
  bench::maybe_write_csv(scale, "ablation_optimizers.csv",
                         {"iteration", "bayesian", "random", "grid"}, csv_rows);
  return 0;
}
