// Performance — inference latency of trained LoadDynamics models.
//
// The paper reports < 4.78 ms per inference on a 16-core Xeon. This bench
// measures predict_next latency for a range of model sizes spanning the
// Table IV selections.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "nn/network.hpp"
#include "tensor/matrix.hpp"
#include "workloads/generators.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace ld;

struct Fixture {
  std::shared_ptr<core::TrainedModel> model;
  std::vector<double> history;
};

Fixture make_fixture(std::size_t hist, std::size_t cell, std::size_t layers) {
  const auto trace = workloads::generate(workloads::TraceKind::kGoogle, 30,
                                         {.days = 6.0, .seed = 99});
  const auto split = workloads::split_trace(trace);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 2;  // weights irrelevant for latency
  const core::Hyperparameters hp{.history_length = hist, .cell_size = cell,
                                 .num_layers = layers, .batch_size = 64};
  Fixture f;
  f.model = std::make_shared<core::TrainedModel>(split.train, split.validation, hp, training,
                                                 7);
  f.history = split.all();
  return f;
}

void BM_PredictNext(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)),
                              static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict_next(f.history));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)) +
                 " c=" + std::to_string(state.range(1)) +
                 " L=" + std::to_string(state.range(2)) + " (paper bound: 4.78ms)");
}

// Spans the hyperparameter selections of Table IV. Runs under the default
// dispatched tier: on SIMD hosts a single-window predict takes the fused
// single-timestep path (DESIGN.md §12).
BENCHMARK(BM_PredictNext)
    ->Args({16, 8, 1})
    ->Args({35, 32, 2})
    ->Args({102, 98, 4})
    ->Args({176, 69, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PredictNextUnfused(benchmark::State& state) {
  // Same serving shapes pinned to the blocked tier: the layered per-step
  // GEMM path the fused kernel must beat (and the only path on hosts
  // without a SIMD tier).
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)),
                              static_cast<std::size_t>(state.range(2)));
  const tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict_next(f.history));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)) +
                 " c=" + std::to_string(state.range(1)) +
                 " L=" + std::to_string(state.range(2)) + " layered/blocked");
}

BENCHMARK(BM_PredictNextUnfused)
    ->Args({35, 32, 2})
    ->Args({102, 98, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PredictNextQuant(benchmark::State& state) {
  // Fused path with int8 row-quantized weights (LD_QUANT / --quant): the
  // recurrent stack runs in float over dequantized panels, head stays fp64.
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)),
                              static_cast<std::size_t>(state.range(2)));
  nn::set_quantized_inference(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict_next(f.history));
  }
  nn::set_quantized_inference(false);
  state.SetLabel("n=" + std::to_string(state.range(0)) +
                 " c=" + std::to_string(state.range(1)) +
                 " L=" + std::to_string(state.range(2)) + " fused int8");
}

BENCHMARK(BM_PredictNextQuant)
    ->Args({35, 32, 2})
    ->Args({102, 98, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PredictHorizon(benchmark::State& state) {
  const auto f = make_fixture(32, 32, 2);
  const auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict_horizon(f.history, steps));
  }
}

BENCHMARK(BM_PredictHorizon)->Arg(1)->Arg(6)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
