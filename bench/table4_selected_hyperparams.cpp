// Table IV — the min/max hyperparameter values LoadDynamics (through BO)
// selects per workload, across that workload's interval granularities.
//
// Paper shape: selected values vary widely between workloads (so manual
// tuning would be unreasonable) and typically sit below the search-space
// maximums (so the Table III space is large enough).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/loaddynamics.hpp"

int main(int argc, char** argv) {
  using namespace ld;
  const cli::Args args(argc, argv);
  const bench::ExperimentScale scale = bench::ExperimentScale::from_args(args);

  std::printf("=== Table IV: hyperparameters selected by LoadDynamics ===\n");

  struct Range {
    std::size_t lo = SIZE_MAX, hi = 0;
    void absorb(std::size_t v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  };
  struct WorkloadRanges {
    Range hist, cell, layers, batch;
  };
  std::map<std::string, WorkloadRanges> by_workload;
  std::vector<std::vector<double>> csv_rows;

  for (const auto& config : workloads::paper_workload_configurations()) {
    const auto w = bench::PreparedWorkload::make(config.kind, config.interval_minutes, scale);
    const core::LoadDynamics framework(scale.loaddynamics_config(config.kind));
    const core::FitResult fit = framework.fit(w.split.train, w.split.validation);
    const core::Hyperparameters& hp = fit.best_record().hyperparameters;

    std::printf("  %-8s selected %-36s (val MAPE %5.1f%%, %.0fs)\n", w.label.c_str(),
                hp.to_string().c_str(), fit.best_record().validation_mape,
                fit.search_seconds);
    std::fflush(stdout);

    const std::string key = bench::workload_label(config.kind, 0).substr(
        0, bench::workload_label(config.kind, 0).find('-'));
    WorkloadRanges& ranges = by_workload[key];
    ranges.hist.absorb(hp.history_length);
    ranges.cell.absorb(hp.cell_size);
    ranges.layers.absorb(hp.num_layers);
    ranges.batch.absorb(hp.batch_size);
    csv_rows.push_back({static_cast<double>(config.interval_minutes),
                        static_cast<double>(hp.history_length),
                        static_cast<double>(hp.cell_size),
                        static_cast<double>(hp.num_layers),
                        static_cast<double>(hp.batch_size)});
  }

  std::printf("\n%-10s%16s%14s%12s%16s\n", "Workload", "Hist Len n", "C size", "Layers",
              "Batch size");
  for (const auto& [name, r] : by_workload) {
    std::printf("%-10s%10zu-%-6zu%8zu-%-6zu%6zu-%-6zu%10zu-%-6zu\n", name.c_str(), r.hist.lo,
                r.hist.hi, r.cell.lo, r.cell.hi, r.layers.lo, r.layers.hi, r.batch.lo,
                r.batch.hi);
  }
  std::printf(
      "\nExpected shape (paper): high variation across workloads; selected values\n"
      "mostly below the search-space maximums (Table III is large enough).\n");

  bench::maybe_write_csv(scale, "table4_hyperparams.csv",
                         {"interval", "history", "cell", "layers", "batch"}, csv_rows);
  return 0;
}
