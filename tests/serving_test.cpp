// Serving layer: lock-free registry semantics, service bit-identity with the
// underlying model, concurrent predict/observe/retrain safety (the TSan CI
// job runs this suite), checkpoint restart, and the line protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numbers>
#include <sstream>
#include <thread>
#include <vector>

#include "app/serve_app.hpp"
#include "core/serialization.hpp"
#include "serving/protocol.hpp"
#include "serving/registry.hpp"
#include "serving/service.hpp"
#include "test_util.hpp"

namespace {

using namespace ld;

std::vector<double> seasonal(std::size_t n, double level = 100.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = level + 0.3 * level *
                         std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 12.0);
  return out;
}

/// Small, fast model — enough to serve from; accuracy is not under test here.
std::shared_ptr<core::TrainedModel> quick_model(std::span<const double> series,
                                                std::uint64_t seed = 7) {
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 6;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(series.subspan(0, n_train),
                                              series.subspan(n_train), hp, training, seed);
}

/// Service config with cheap warm retrains so background work finishes fast.
serving::ServiceConfig quick_service(bool background_retrain = false) {
  serving::ServiceConfig cfg;
  cfg.replicas = 2;
  cfg.background_retrain = background_retrain;
  cfg.adaptive.base.space = core::HyperparameterSpace::reduced();
  cfg.adaptive.base.space.history_max = 16;
  cfg.adaptive.base.space.cell_max = 12;
  cfg.adaptive.base.space.layers_max = 1;
  cfg.adaptive.base.training.trainer.max_epochs = 3;
  cfg.adaptive.refresh_candidates = 1;
  cfg.adaptive.retrain_history_cap = 120;
  cfg.adaptive.monitor_window = 16;
  cfg.adaptive.min_scored = 6;
  cfg.adaptive.cooldown = 8;
  cfg.adaptive.degradation_factor = 1.5;
  cfg.adaptive.absolute_mape_floor = 10.0;
  return cfg;
}

TEST(ServingRegistry, InFlightSnapshotSurvivesPublish) {
  const auto series = seasonal(240);
  const auto model = quick_model(series);

  serving::ModelRegistry registry;
  EXPECT_EQ(registry.current("web"), nullptr);

  registry.publish("web", std::make_shared<const serving::PublishedModel>(*model, 1, 2));
  const auto v1 = registry.current("web");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  const double before = v1->predict_next(series);

  registry.publish("web", std::make_shared<const serving::PublishedModel>(*model, 2, 2));
  const auto v2 = registry.current("web");
  EXPECT_EQ(v2->version(), 2u);

  // RCU semantics: the old snapshot stays fully usable for in-flight readers.
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->predict_next(series), before);

  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"web"});
}

TEST(ServingRegistry, ReplicasAreBitIdenticalToSourceModel) {
  const auto series = seasonal(240);
  const auto model = quick_model(series);
  const serving::PublishedModel published(*model, 1, 3);
  EXPECT_EQ(published.replica_count(), 3u);
  EXPECT_EQ(published.validation_mape(), model->validation_mape());
  EXPECT_EQ(published.hyperparameters(), model->hyperparameters());

  for (const std::size_t len : {40u, 100u, 240u}) {
    const std::span<const double> hist(series.data(), len);
    EXPECT_EQ(published.predict_next(hist), model->predict_next(hist));
  }
  const auto direct = model->predict_horizon(series, 5);
  const auto via = published.predict_horizon(series, 5);
  ASSERT_EQ(via.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(via[i], direct[i]);
}

// Acceptance (a): predictions through the service are bit-identical to
// calling the underlying TrainedModel directly.
TEST(Serving, PredictionsBitIdenticalToDirectModel) {
  const auto series = seasonal(240);
  const auto model = quick_model(series);
  const testutil::ScopedTempDir tmp("serving_direct");
  const auto path = tmp.file("m.ldm");
  core::save_model_file(*model, path);
  const auto direct = core::load_model_file(path);

  serving::PredictionService service(quick_service());
  service.load_workload("web", path);
  service.observe_many("web", series);

  const auto got = service.predict("web", 6);
  const auto want = direct->predict_horizon(series, 6);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "service must add zero numeric drift (step " << i << ")";
  std::filesystem::remove(path);
}

TEST(Serving, ValidatesNamesHorizonsAndMissingModels) {
  serving::PredictionService service(quick_service());
  EXPECT_THROW(service.observe("bad name", 1.0), std::invalid_argument);
  EXPECT_THROW(service.observe(".hidden", 1.0), std::invalid_argument);
  EXPECT_THROW((void)service.predict("nope", 1), std::runtime_error);

  service.observe("web", 42.0);  // registers the workload, no model yet
  EXPECT_THROW((void)service.predict("web", 1), std::runtime_error);
  EXPECT_THROW((void)service.predict("web", 0), std::invalid_argument);
  EXPECT_FALSE(service.request_retrain("web")) << "no model -> nothing to retrain";
  EXPECT_FALSE(service.add_workload("web")) << "no checkpoint dir -> no warm start";

  const auto stats = service.stats("web");
  EXPECT_EQ(stats.version, 0u);
  EXPECT_EQ(stats.observations, 1u);

  serving::ServiceConfig tiny;
  tiny.max_history = 4;
  EXPECT_THROW(serving::PredictionService bad(tiny), std::invalid_argument);
}

TEST(Serving, HistoryCapTrimsButKeepsAbsoluteSteps) {
  auto cfg = quick_service();
  cfg.max_history = 64;
  serving::PredictionService service(cfg);
  const auto series = seasonal(400);
  service.observe_many("web", series);
  const auto stats = service.stats("web");
  EXPECT_EQ(stats.observations, 400u);
  EXPECT_LE(stats.history_size, 64u + 64u / 4u);
  EXPECT_GE(stats.history_size, 64u);
}

// Acceptance (b): a background retrain never blocks or corrupts concurrent
// predictions — exercised with real thread overlap; the TSan CI job runs
// this suite to prove data-race freedom.
TEST(Serving, ConcurrentPredictObserveRetrainIsSafe) {
  const auto series = seasonal(200);
  serving::PredictionService service(quick_service());
  const std::vector<std::string> names{"alpha", "beta"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto model = quick_model(series, 7 + i);
    service.publish(names[i], *model);
    service.observe_many(names[i], series);
  }

  constexpr std::size_t kPredictors = 3;
  constexpr std::size_t kPredictsEach = 30;
  constexpr std::size_t kObserved = 100;
  std::atomic<std::size_t> bad{0};

  std::vector<std::thread> threads;
  for (const std::string& name : names) {
    threads.emplace_back([&, name] {
      const auto tail = seasonal(kObserved, 140.0);
      for (std::size_t t = 0; t < kObserved; ++t) {
        service.observe(name, tail[t]);
        std::this_thread::yield();
      }
    });
  }
  for (std::size_t p = 0; p < kPredictors; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t r = 0; r < kPredictsEach; ++r) {
        const auto forecast = service.predict(names[(p + r) % names.size()], 3);
        if (forecast.size() != 3 || !std::isfinite(forecast[0]))
          bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Force retrains that overlap the predictions above.
  EXPECT_TRUE(service.request_retrain("alpha"));
  (void)service.request_retrain("beta");
  for (auto& t : threads) t.join();
  service.wait_idle();

  EXPECT_EQ(bad.load(), 0u);
  std::size_t predictions = 0;
  for (const std::string& name : names) {
    const auto stats = service.stats(name);
    EXPECT_EQ(stats.observations, series.size() + kObserved);
    EXPECT_FALSE(stats.retrain_pending);
    EXPECT_GE(stats.version, 1u);
    predictions += stats.predictions;
  }
  EXPECT_EQ(predictions, kPredictors * kPredictsEach);
}

TEST(Serving, DriftTriggersBackgroundRetrain) {
  const auto calm = seasonal(240, 100.0);
  serving::PredictionService service(quick_service(/*background_retrain=*/true));
  service.publish("web", *quick_model(calm));
  service.observe_many("web", calm);
  EXPECT_EQ(service.stats("web").retrains, 0u);

  // 3x level jump: the model keeps forecasting ~100 while actuals are ~300,
  // so the drift monitor must queue a retrain once enough forecasts score.
  const auto shifted = seasonal(80, 300.0);
  for (const double actual : shifted) {
    (void)service.predict("web", 1);
    service.observe("web", actual);
  }
  service.wait_idle();
  const auto stats = service.stats("web");
  EXPECT_GE(stats.retrains, 1u) << "3x regime change must trigger a background retrain";
  EXPECT_GE(stats.version, 2u);
  EXPECT_FALSE(stats.retrain_pending);
}

// Acceptance (c): a service restarted from its persisted checkpoints resumes
// with bit-identical forecasts.
TEST(Serving, RestartFromCheckpointResumesIdenticalForecasts) {
  const testutil::ScopedTempDir tmp("serving_restart");
  const std::filesystem::path& dir = tmp.path();
  const auto series = seasonal(240);

  std::vector<double> before;
  {
    auto cfg = quick_service();
    cfg.checkpoint_dir = dir.string();
    serving::PredictionService service(cfg);
    service.publish("web", *quick_model(series));
    service.observe_many("web", series);
    ASSERT_TRUE(service.request_retrain("web"));
    service.wait_idle();
    ASSERT_EQ(service.stats("web").version, 2u) << "manual retrain must publish v2";
    before = service.predict("web", 4);
  }
  ASSERT_TRUE(std::filesystem::exists(dir / "web.ldm"));

  auto cfg = quick_service();
  cfg.checkpoint_dir = dir.string();
  serving::PredictionService restarted(cfg);
  ASSERT_TRUE(restarted.add_workload("web")) << "checkpoint must warm-start the workload";
  restarted.observe_many("web", series);
  const auto after = restarted.predict("web", 4);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i], before[i]) << "restart must resume the exact forecast (step " << i
                                   << ")";
}

TEST(Serving, RestartAfterTornCheckpointFallsBackToPreviousGood) {
  const testutil::ScopedTempDir tmp("serving_torn_restart");
  const std::filesystem::path& dir = tmp.path();
  const auto series = seasonal(240);

  std::vector<double> before;
  {
    auto cfg = quick_service();
    cfg.checkpoint_dir = dir.string();
    serving::PredictionService service(cfg);
    service.publish("web", *quick_model(series));
    service.observe_many("web", series);
    before = service.predict("web", 4);
    // A second publish displaces the first checkpoint to web.ldm.prev.
    service.publish("web", *quick_model(series, 8));
  }
  ASSERT_TRUE(std::filesystem::exists(dir / "web.ldm.prev"));

  // Simulate a crash mid-save: tear the primary checkpoint in half.
  {
    std::ifstream in(dir / "web.ldm", std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    text.resize(text.size() / 2);
    std::ofstream out(dir / "web.ldm", std::ios::binary | std::ios::trunc);
    out << text;
  }

  auto cfg = quick_service();
  cfg.checkpoint_dir = dir.string();
  serving::PredictionService restarted(cfg);
  ASSERT_TRUE(restarted.add_workload("web"))
      << "torn primary must fall back to the previous-good snapshot";
  EXPECT_TRUE(std::filesystem::exists(dir / "web.ldm.quarantine"))
      << "the torn checkpoint must be quarantined, not silently deleted";
  restarted.observe_many("web", series);
  const auto after = restarted.predict("web", 4);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i], before[i])
        << "previous-good restart must reproduce v1's exact forecast (step " << i << ")";
}

TEST(Serving, PredictBatchMatchesIndividualAndReportsPerSlotErrors) {
  const auto series = seasonal(240);
  serving::PredictionService service(quick_service());
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  const std::vector<serving::PredictRequest> requests{
      {"web", 2}, {"missing", 2}, {"web", 4}};
  const auto responses = service.predict_batch(requests);
  ASSERT_EQ(responses.size(), 3u);

  EXPECT_TRUE(responses[0].error.empty());
  EXPECT_TRUE(responses[2].error.empty());
  const auto direct = service.predict("web", 4);
  ASSERT_EQ(responses[2].forecast.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(responses[2].forecast[i], direct[i]);
  EXPECT_EQ(responses[0].forecast[0], responses[2].forecast[0]);

  EXPECT_TRUE(responses[1].forecast.empty());
  EXPECT_NE(responses[1].error.find("missing"), std::string::npos);
}

TEST(ServingProtocol, ScriptedSessionEndToEnd) {
  const auto series = seasonal(240);
  const testutil::ScopedTempDir tmp("serving_protocol");
  const std::filesystem::path& dir = tmp.path();
  const std::string model_path = (dir / "web.ldm").string();
  const std::string saved_path = (dir / "saved.ldm").string();
  core::save_model_file(*quick_model(series), model_path);

  serving::PredictionService service(quick_service());
  serving::LineProtocol protocol(service);

  std::ostringstream values;
  values.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < 40; ++i) values << ' ' << series[i];

  std::istringstream in("# warm start\n"
                        "LOAD web " + model_path + "\n"
                        "INGEST web" + values.str() + "\n"
                        "observe web 123.5\n"
                        "PREDICT web 3\n"
                        "STATS web\n"
                        "WORKLOADS\n"
                        "SAVE web " + saved_path + "\n"
                        "BOGUS\n"
                        "PREDICT nope 2\n"
                        "PREDICT web 2.5\n"
                        "QUIT\n"
                        "PREDICT web 1\n");
  std::ostringstream out;
  EXPECT_EQ(protocol.run(in, out), 11u) << "comments don't count; QUIT ends the session";

  const std::string reply = out.str();
  EXPECT_NE(reply.find("OK web v1\n"), std::string::npos);
  EXPECT_NE(reply.find("OK 40\n"), std::string::npos);
  EXPECT_NE(reply.find("PRED web "), std::string::npos);
  EXPECT_NE(reply.find("STATS web version=1 observed=41 predictions=1"),
            std::string::npos);
  EXPECT_NE(reply.find("WORKLOADS web\n"), std::string::npos);
  EXPECT_NE(reply.find("OK saved " + saved_path), std::string::npos);
  EXPECT_NE(reply.find("ERR unknown command 'BOGUS'\n"), std::string::npos);
  EXPECT_NE(reply.find("ERR serving: no model published for 'nope'\n"), std::string::npos);
  EXPECT_NE(reply.find("ERR bad horizon '2.5'\n"), std::string::npos);
  EXPECT_NE(reply.find("OK bye\n"), std::string::npos);

  // The saved model must round-trip to the exact same forecast.
  const auto saved = core::load_model_file(saved_path);
  const std::span<const double> hist(series.data(), 41);
  std::vector<double> observed(series.begin(), series.begin() + 40);
  observed.push_back(123.5);
  EXPECT_EQ(saved->predict_next(observed), service.predict("web", 1)[0]);
}

TEST(ServingProtocol, LosslessForecastPrecisionOverText) {
  const auto series = seasonal(240);
  serving::PredictionService service(quick_service());
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  serving::LineProtocol protocol(service);
  std::ostringstream out;
  EXPECT_TRUE(protocol.handle("PREDICT web 1", out));
  std::istringstream reply(out.str());
  std::string tag, name;
  double value = 0.0;
  ASSERT_TRUE(reply >> tag >> name >> value);
  EXPECT_EQ(tag, "PRED");
  // max_digits10 output must parse back to the identical double.
  EXPECT_EQ(value, service.predict("web", 1)[0]);
}

TEST(ServingProtocol, MetricsCommandEmitsPrometheusText) {
  const auto series = seasonal(240);
  serving::PredictionService service(quick_service());
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  serving::LineProtocol protocol(service);
  std::ostringstream warm;
  EXPECT_TRUE(protocol.handle("PREDICT web 1", warm));

  std::ostringstream out;
  EXPECT_TRUE(protocol.handle("METRICS", out));
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE ld_serving_predict_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("ld_serving_predict_latency_seconds"), std::string::npos);
  EXPECT_NE(text.find("workload=\"web\""), std::string::npos);
  EXPECT_NE(text.find("ld_serving_retrains_total"), std::string::npos);
  EXPECT_NE(text.find("ld_serving_command_latency_seconds"), std::string::npos);
  // Multi-line response ends with the protocol terminator line.
  EXPECT_NE(text.find("OK metrics\n"), std::string::npos);

  std::ostringstream json_out;
  EXPECT_TRUE(protocol.handle("METRICS JSON", json_out));
  const std::string json_line = json_out.str();
  EXPECT_EQ(json_line.rfind("METRICS {", 0), 0u) << "single-line JSON reply";
  EXPECT_EQ(std::count(json_line.begin(), json_line.end(), '\n'), 1)
      << "JSON variant stays one protocol line";
}

TEST(ServingApp, ReplayFileServesPredictionsInProcess) {
  const auto series = seasonal(240);
  const testutil::ScopedTempDir tmp("serving_app");
  const std::filesystem::path& dir = tmp.path();
  const std::string model_path = (dir / "web.ldm").string();
  core::save_model_file(*quick_model(series), model_path);

  std::ostringstream script;
  script.precision(std::numeric_limits<double>::max_digits10);
  script << "INGEST web";
  for (std::size_t i = 0; i < 60; ++i) script << ' ' << series[i];
  script << "\nPREDICT web 4\nSTATS web\nQUIT\n";
  const std::string replay_path = (dir / "replay.txt").string();
  std::ofstream(replay_path) << script.str();

  const std::string spec = "web=" + model_path;
  const char* argv[] = {"ld_serve", spec.c_str(), "--replay", replay_path.c_str(),
                        "--no-retrain"};
  std::istringstream in;
  std::ostringstream out, err;
  EXPECT_EQ(app::run_serve(5, argv, in, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("PRED web "), std::string::npos);
  EXPECT_NE(err.str().find("served 4 commands"), std::string::npos);
}

TEST(ServingApp, ResumesWorkloadsFromCheckpointDir) {
  const auto series = seasonal(240);
  const testutil::ScopedTempDir tmp("serving_app_resume");
  const std::filesystem::path& dir = tmp.path();
  const auto ckpt = dir / "ckpt";
  std::filesystem::create_directories(ckpt);
  core::save_model_file(*quick_model(series), (ckpt / "web.ldm").string());

  std::ostringstream script;
  script.precision(std::numeric_limits<double>::max_digits10);
  script << "INGEST web";
  for (std::size_t i = 0; i < 60; ++i) script << ' ' << series[i];
  script << "\nPREDICT web 2\nQUIT\n";
  const std::string replay_path = (dir / "replay.txt").string();
  std::ofstream(replay_path) << script.str();

  // No positional specs: the workload must come back from the checkpoint.
  const std::string ckpt_flag = ckpt.string();
  const char* argv[] = {"ld_serve",  "--checkpoint-dir", ckpt_flag.c_str(),
                        "--replay",  replay_path.c_str(), "--no-retrain"};
  std::istringstream in;
  std::ostringstream out, err;
  EXPECT_EQ(app::run_serve(6, argv, in, out, err), 0) << err.str();
  EXPECT_NE(err.str().find("resumed 'web'"), std::string::npos);
  EXPECT_NE(out.str().find("PRED web "), std::string::npos);
}

TEST(ServingApp, BadWorkloadSpecFailsCleanly) {
  const char* argv[] = {"ld_serve", "no-equals-sign"};
  std::istringstream in;
  std::ostringstream out, err;
  EXPECT_EQ(app::run_serve(2, argv, in, out, err), 2);
  EXPECT_NE(err.str().find("bad workload spec"), std::string::npos);
}

}  // namespace
