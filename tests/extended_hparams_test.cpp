// Section V extension: alternative activations, loss functions, learning
// rate and dropout — gradient exactness for each activation, loss gradients,
// dropout semantics, and the extended search-space plumbing end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "core/hyperparameters.hpp"
#include "core/loaddynamics.hpp"
#include "nn/activation.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace ld;
using nn::Activation;
using nn::Loss;

// --- Activations -------------------------------------------------------------

class ActivationGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradCheck, DerivativeMatchesFiniteDifference) {
  const Activation act = GetParam();
  for (double x : {-2.0, -0.5, 0.0, 0.3, 1.7}) {
    const double eps = 1e-6;
    const double numeric =
        (nn::activate(act, x + eps) - nn::activate(act, x - eps)) / (2.0 * eps);
    const double analytic = nn::activate_grad_from_output(act, nn::activate(act, x));
    EXPECT_NEAR(analytic, numeric, 1e-6) << nn::activation_name(act) << " at x=" << x;
  }
}

TEST_P(ActivationGradCheck, NetworkBpttStaysExact) {
  // Full-network gradient check with the non-default activation.
  const Activation act = GetParam();
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 4, .num_layers = 2, .activation = act}, 31);
  Rng rng(7);
  tensor::Matrix x(3, 5);
  for (double& v : x.flat()) v = rng.uniform(-1.0, 1.0);

  const std::vector<double> out = net.forward(x);
  net.zero_grad();
  net.backward(out);  // dL/dy = y for L = 0.5 sum y^2

  auto params = net.parameters();
  auto grads = net.gradients();
  const double eps = 1e-5;
  for (std::size_t s = 0; s < params.size(); ++s) {
    const std::size_t stride = std::max<std::size_t>(1, params[s].size() / 5);
    for (std::size_t i = 0; i < params[s].size(); i += stride) {
      const double orig = params[s][i];
      auto loss = [&] {
        double l = 0.0;
        for (const double v : net.forward(x)) l += 0.5 * v * v;
        return l;
      };
      params[s][i] = orig + eps;
      const double lp = loss();
      params[s][i] = orig - eps;
      const double lm = loss();
      params[s][i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double scale = std::max({1.0, std::abs(numeric), std::abs(grads[s][i])});
      EXPECT_NEAR(grads[s][i], numeric, 2e-5 * scale)
          << nn::activation_name(act) << " tensor " << s << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradCheck,
                         ::testing::Values(Activation::kTanh, Activation::kSigmoid,
                                           Activation::kSoftsign));

TEST(Activation, NameRoundTrip) {
  for (const Activation a :
       {Activation::kTanh, Activation::kSigmoid, Activation::kSoftsign})
    EXPECT_EQ(nn::activation_from_name(nn::activation_name(a)), a);
  EXPECT_THROW((void)nn::activation_from_name("relu6"), std::invalid_argument);
}

// --- Losses ---------------------------------------------------------------------

class LossGradCheck : public ::testing::TestWithParam<Loss> {};

TEST_P(LossGradCheck, GradientMatchesFiniteDifference) {
  const Loss loss = GetParam();
  const std::vector<double> targets{0.2, 0.8, 0.5};
  std::vector<double> preds{0.4, 0.3, 0.9};
  std::vector<double> grad(3);
  (void)nn::compute_loss(loss, preds, targets, grad, 0.15);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double eps = 1e-7;
    std::vector<double> scratch(3);
    preds[i] += eps;
    const double lp = nn::compute_loss(loss, preds, targets, scratch, 0.15);
    preds[i] -= 2.0 * eps;
    const double lm = nn::compute_loss(loss, preds, targets, scratch, 0.15);
    preds[i] += eps;
    EXPECT_NEAR(grad[i], (lp - lm) / (2.0 * eps), 1e-6) << nn::loss_name(loss);
  }
}

INSTANTIATE_TEST_SUITE_P(All, LossGradCheck,
                         ::testing::Values(Loss::kMse, Loss::kMae, Loss::kHuber));

TEST(Loss, HuberInterpolatesBetweenMseAndMae) {
  const std::vector<double> target{0.0};
  std::vector<double> grad(1);
  // Small error: Huber ~ 0.5 * MSE shape.
  const std::vector<double> small{0.05};
  EXPECT_NEAR(nn::compute_loss(Loss::kHuber, small, target, grad, 0.1), 0.5 * 0.05 * 0.05,
              1e-12);
  // Large error: linear like MAE.
  const std::vector<double> large{10.0};
  EXPECT_NEAR(nn::compute_loss(Loss::kHuber, large, target, grad, 0.1),
              0.1 * (10.0 - 0.05), 1e-9);
}

TEST(Loss, ValidationAndNames) {
  std::vector<double> grad(1);
  const std::vector<double> a{1.0}, b{1.0, 2.0};
  EXPECT_THROW((void)nn::compute_loss(Loss::kMse, a, b, grad), std::invalid_argument);
  for (const Loss l : {Loss::kMse, Loss::kMae, Loss::kHuber})
    EXPECT_EQ(nn::loss_from_name(nn::loss_name(l)), l);
}

// --- Dropout ----------------------------------------------------------------------

TEST(Dropout, InferenceIsDeterministicAndDropFree) {
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 8, .num_layers = 2, .dropout = 0.5}, 5);
  Rng rng(3);
  tensor::Matrix x(4, 6);
  for (double& v : x.flat()) v = rng.uniform();
  // Inference mode (default): dropout inactive -> identical outputs.
  EXPECT_EQ(net.forward(x), net.forward(x));
}

TEST(Dropout, TrainingModeInjectsNoise) {
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 8, .num_layers = 2, .dropout = 0.5}, 5);
  Rng rng(3);
  tensor::Matrix x(4, 6);
  for (double& v : x.flat()) v = rng.uniform();
  net.set_training(true);
  const auto a = net.forward(x);
  const auto b = net.forward(x);  // fresh masks each forward
  EXPECT_NE(a, b);
}

TEST(Dropout, SingleLayerNetworkUnaffected) {
  // Dropout applies between stacked layers only; with one layer it is a no-op.
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 8, .num_layers = 1, .dropout = 0.5}, 5);
  Rng rng(3);
  tensor::Matrix x(2, 4);
  for (double& v : x.flat()) v = rng.uniform();
  net.set_training(true);
  EXPECT_EQ(net.forward(x), net.forward(x));
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(nn::LstmNetwork({.input_size = 1, .hidden_size = 4, .num_layers = 1,
                                .dropout = 1.0},
                               1),
               std::invalid_argument);
}

TEST(Dropout, TrainingStillConvergesWithDropout) {
  std::vector<double> series(300);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 0.5 + 0.3 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 12.0);
  const nn::SlidingWindowDataset train(std::span<const double>(series).subspan(0, 240), 12);
  const nn::SlidingWindowDataset val(std::span<const double>(series).subspan(228), 12);
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 12, .num_layers = 2, .dropout = 0.2}, 9);
  nn::TrainerConfig tc;
  tc.max_epochs = 40;
  tc.learning_rate = 5e-3;
  const auto result = nn::train(net, train, &val, tc, 13);
  EXPECT_LT(result.best_validation_loss, 5e-3);
}

// --- Extended search space --------------------------------------------------------

TEST(ExtendedSpace, RoundTripAllEightDimensions) {
  core::HyperparameterSpace space = core::HyperparameterSpace::reduced();
  space.extended = true;
  const core::Hyperparameters hp{.history_length = 12,
                                 .cell_size = 10,
                                 .num_layers = 2,
                                 .batch_size = 32,
                                 .activation = Activation::kSoftsign,
                                 .loss = Loss::kHuber,
                                 .learning_rate = 3e-3,
                                 .dropout = 0.25};
  const core::Hyperparameters back = space.from_values(space.to_values(hp));
  EXPECT_EQ(back.activation, hp.activation);
  EXPECT_EQ(back.loss, hp.loss);
  EXPECT_NEAR(back.learning_rate, hp.learning_rate, 1e-12);
  EXPECT_NEAR(back.dropout, hp.dropout, 1e-12);
}

TEST(ExtendedSpace, SearchSpaceHasEightDims) {
  core::HyperparameterSpace space = core::HyperparameterSpace::reduced();
  EXPECT_EQ(space.to_search_space().size(), 4u);
  space.extended = true;
  EXPECT_EQ(space.to_search_space().size(), 8u);
}

TEST(ExtendedSpace, SampledValuesStayInRange) {
  core::HyperparameterSpace space = core::HyperparameterSpace::reduced();
  space.extended = true;
  const auto ss = space.to_search_space();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto hp = space.from_values(ss.to_values(ss.sample_unit(rng)));
    EXPECT_GE(hp.learning_rate, space.lr_min);
    EXPECT_LE(hp.learning_rate, space.lr_max);
    EXPECT_GE(hp.dropout, 0.0);
    EXPECT_LE(hp.dropout, space.dropout_max);
  }
}

TEST(ExtendedSpace, InvalidRangesThrow) {
  core::HyperparameterSpace space = core::HyperparameterSpace::reduced();
  space.extended = true;
  space.lr_min = 0.0;
  EXPECT_THROW(space.validate(), std::invalid_argument);
  space = core::HyperparameterSpace::reduced();
  space.extended = true;
  space.dropout_max = 1.0;
  EXPECT_THROW(space.validate(), std::invalid_argument);
}

TEST(ExtendedSpace, LoadDynamicsRunsWithExtendedSearch) {
  std::vector<double> series(260);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] =
        100.0 + 40.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  const std::span<const double> all(series);

  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.space.extended = true;
  cfg.space.history_max = 20;
  cfg.space.cell_max = 10;
  cfg.space.layers_max = 2;
  cfg.max_iterations = 6;
  cfg.initial_random = 3;
  cfg.training.trainer.max_epochs = 10;
  const core::LoadDynamics framework(cfg);
  const core::FitResult fit = framework.fit(all.subspan(0, 180), all.subspan(180, 50));
  EXPECT_EQ(fit.database.size(), 6u);
  EXPECT_TRUE(std::isfinite(fit.best_record().validation_mape));
  // The selected learning rate came from the search space, not the default.
  EXPECT_GT(fit.best_record().hyperparameters.learning_rate, 0.0);
}

}  // namespace
