// Event-driven simulator: policy behaviours, queueing mechanics, billing
// and the invariants that make the DES trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cloudsim/simulator.hpp"
#include "timeseries/smoothing.hpp"

namespace {

using namespace ld::cloudsim;

DesConfig deterministic() {
  DesConfig cfg;
  cfg.job_service_cv = 0.0;
  cfg.job_service_mean = 200.0;
  cfg.vm_boot_seconds = 100.0;
  cfg.interval_seconds = 3600.0;
  return cfg;
}

TEST(DesPolicies, OracleProvisionsExactDemand) {
  const std::vector<double> demand{5.0, 12.0, 3.0};
  OraclePolicy oracle(demand);
  const auto result = run_simulation(oracle, demand, deterministic());
  ASSERT_EQ(result.intervals.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(result.intervals[i].target_vms, static_cast<std::size_t>(demand[i]));
  // With exact provisioning and all-at-start arrivals, intervals after the
  // first have zero wait (interval 0 pays the initial cold boot).
  EXPECT_EQ(result.intervals[1].mean_wait, 0.0);
  EXPECT_EQ(result.intervals[2].mean_wait, 0.0);
  EXPECT_EQ(result.intervals[1].on_demand_boots, 0u);
}

TEST(DesPolicies, ReactiveFollowsDemandWithLag) {
  ReactivePolicy reactive(1.0, 1, 1000);
  const std::vector<double> demand{10.0, 10.0, 40.0, 40.0};
  const auto result = run_simulation(reactive, demand, deterministic());
  // Interval 2's target is based on interval 1's demand -> lags the surge.
  EXPECT_EQ(result.intervals[2].target_vms, 10u);
  EXPECT_EQ(result.intervals[3].target_vms, 40u);
  EXPECT_GT(result.intervals[2].on_demand_boots, 0u)
      << "the reactive policy must cold-start VMs during the surge interval";
  EXPECT_GT(result.intervals[2].mean_wait, 0.0);
}

TEST(DesPolicies, PredictiveUsesForecaster) {
  auto mean = std::make_shared<ld::ts::MeanPredictor>(3);
  PredictivePolicy policy(mean, /*refit_every=*/0);
  const std::vector<double> demand(6, 20.0);
  const auto result = run_simulation(policy, demand, deterministic());
  // Constant demand: after warm-up the mean forecaster nails the target.
  for (std::size_t i = 2; i < result.intervals.size(); ++i)
    EXPECT_EQ(result.intervals[i].target_vms, 20u);
  EXPECT_EQ(result.intervals.back().mean_wait, 0.0);
}

TEST(DesPolicies, HeadroomOverprovisions) {
  auto mean = std::make_shared<ld::ts::MeanPredictor>(3);
  PredictivePolicy padded(mean, 0, /*headroom=*/0.25);
  const std::vector<double> demand(4, 20.0);
  const auto result = run_simulation(padded, demand, deterministic());
  EXPECT_EQ(result.intervals.back().target_vms, 25u);  // ceil(20 * 1.25)
}

TEST(DesPolicies, FixedPolicyIsConstant) {
  FixedPolicy fixed(7);
  const std::vector<double> demand{3.0, 30.0, 3.0};
  DesConfig cfg = deterministic();
  cfg.allow_on_demand = false;  // hard capacity cap: surplus jobs must queue
  const auto result = run_simulation(fixed, demand, cfg);
  for (const auto& s : result.intervals) EXPECT_EQ(s.target_vms, 7u);
  // 30 jobs on 7 capped VMs run in ~5 waves of 200 s each.
  EXPECT_GT(result.intervals[1].mean_turnaround, 400.0);
}

TEST(DesPolicies, OnDemandBeatsHardCapOnTurnaround) {
  const std::vector<double> demand{3.0, 30.0, 3.0};
  DesConfig capped = deterministic();
  capped.allow_on_demand = false;
  FixedPolicy a(7), b(7);
  const auto with_cap = run_simulation(a, demand, capped);
  const auto elastic = run_simulation(b, demand, deterministic());
  EXPECT_LT(elastic.intervals[1].mean_turnaround, with_cap.intervals[1].mean_turnaround);
}

TEST(DesEngine, UnderProvisionedIntervalQueuesJobs) {
  FixedPolicy fixed(2);
  const std::vector<double> demand{6.0};
  const auto cfg = deterministic();
  const auto result = run_simulation(fixed, demand, cfg);
  // 6 jobs, 2 warm... interval 0 VMs cold-boot (100s). Jobs run in waves of
  // 2 x 200s, or an on-demand VM boots (ready at 100s) — both paths compete.
  EXPECT_EQ(result.total_jobs, 6u);
  EXPECT_EQ(result.intervals[0].arrived_jobs, 6u);
  EXPECT_GT(result.mean_wait, 0.0);
  EXPECT_GE(result.p99_turnaround, result.mean_turnaround);
}

TEST(DesEngine, CostGrowsWithProvisioning) {
  const std::vector<double> demand(6, 10.0);
  FixedPolicy small(10), large(40);
  const auto small_result = run_simulation(small, demand, deterministic());
  const auto large_result = run_simulation(large, demand, deterministic());
  EXPECT_GT(large_result.total_cost, small_result.total_cost * 2.0);
  EXPECT_LT(large_result.mean_utilization, small_result.mean_utilization);
}

TEST(DesEngine, UtilizationBoundedAndPositive) {
  ReactivePolicy reactive(1.1);
  const std::vector<double> demand{8.0, 16.0, 12.0, 20.0};
  const auto result = run_simulation(reactive, demand, deterministic());
  for (const auto& s : result.intervals) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }
  EXPECT_GT(result.mean_utilization, 0.0);
}

TEST(DesEngine, ArrivalPatternsAffectQueueing) {
  // Same demand, same fixed under-provisioning: spreading arrivals inside
  // the interval reduces the peak queue vs the all-at-start burst.
  const std::vector<double> demand(4, 30.0);
  auto run_with = [&](ArrivalPattern pattern) {
    DesConfig cfg = deterministic();
    cfg.arrivals = pattern;
    FixedPolicy fixed(10);
    return run_simulation(fixed, demand, cfg);
  };
  const auto burst = run_with(ArrivalPattern::kAllAtStart);
  const auto uniform = run_with(ArrivalPattern::kUniform);
  EXPECT_GT(burst.mean_wait, uniform.mean_wait);
}

TEST(DesEngine, PoissonArrivalsReproducible) {
  const std::vector<double> demand(3, 15.0);
  DesConfig cfg = deterministic();
  cfg.arrivals = ArrivalPattern::kPoisson;
  cfg.seed = 5;
  FixedPolicy fixed(15);
  const auto a = run_simulation(fixed, demand, cfg);
  const auto b = run_simulation(fixed, demand, cfg);
  EXPECT_EQ(a.mean_turnaround, b.mean_turnaround);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

TEST(DesEngine, ScaleDownTerminatesIdleVms) {
  const std::vector<double> demand{40.0, 2.0, 2.0, 2.0};
  ReactivePolicy reactive(1.0, 1, 1000);
  DesConfig keep = deterministic();
  keep.scale_down_idle = false;
  DesConfig shrink = deterministic();
  shrink.scale_down_idle = true;
  ReactivePolicy reactive2(1.0, 1, 1000);
  const auto kept = run_simulation(reactive, demand, keep);
  const auto shrunk = run_simulation(reactive2, demand, shrink);
  EXPECT_LT(shrunk.total_cost, kept.total_cost)
      << "terminating idle VMs must save money on a shrinking workload";
}

TEST(DesEngine, OracleBeatsReactiveOnVolatileDemand) {
  // The whole point of prediction: on volatile demand the oracle should give
  // lower wait than a lagging reactive rule at comparable or lower cost.
  std::vector<double> demand;
  for (int i = 0; i < 12; ++i) demand.push_back(i % 2 == 0 ? 5.0 : 45.0);
  OraclePolicy oracle(demand);
  ReactivePolicy reactive(1.0, 1, 1000);
  const auto oracle_result = run_simulation(oracle, demand, deterministic());
  const auto reactive_result = run_simulation(reactive, demand, deterministic());
  EXPECT_LT(oracle_result.mean_wait, reactive_result.mean_wait);
}

TEST(DesEngine, InputValidation) {
  FixedPolicy fixed(1);
  const std::vector<double> empty;
  EXPECT_THROW((void)run_simulation(fixed, empty), std::invalid_argument);
  DesConfig bad = deterministic();
  bad.interval_seconds = 0.0;
  const std::vector<double> demand{1.0};
  EXPECT_THROW((void)run_simulation(fixed, demand, bad), std::invalid_argument);
  EXPECT_THROW(PredictivePolicy(nullptr), std::invalid_argument);
  EXPECT_THROW(ReactivePolicy(0.0), std::invalid_argument);
  EXPECT_THROW(OraclePolicy(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
