// Fault-tolerance layer: injector determinism and spec parsing, retry
// backoff schedules, watchdog supervision, the serving fallback chain and
// input sanitization. Suite names all carry "Fault" so the CI TSan job's
// filter picks them up alongside the serving suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "fault/fallback.hpp"
#include "fault/injector.hpp"
#include "fault/watchdog.hpp"
#include "serving/registry.hpp"
#include "serving/service.hpp"

namespace {

using namespace ld;

/// Every test leaves the process-wide injector off, whatever happens.
class InjectorGuard {
 public:
  InjectorGuard() { fault::Injector::instance().reset(); }
  ~InjectorGuard() { fault::Injector::instance().reset(); }
};

std::vector<double> seasonal(std::size_t n, double level = 100.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = level + 0.3 * level *
                         std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 12.0);
  return out;
}

std::shared_ptr<core::TrainedModel> quick_model(std::span<const double> series,
                                                std::uint64_t seed = 7) {
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 6;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(series.subspan(0, n_train),
                                              series.subspan(n_train), hp, training, seed);
}

serving::ServiceConfig quick_service() {
  serving::ServiceConfig cfg;
  cfg.replicas = 2;
  cfg.background_retrain = false;
  cfg.adaptive.base.space = core::HyperparameterSpace::reduced();
  cfg.adaptive.base.space.history_max = 16;
  cfg.adaptive.base.space.cell_max = 12;
  cfg.adaptive.base.space.layers_max = 1;
  cfg.adaptive.base.training.trainer.max_epochs = 3;
  cfg.adaptive.refresh_candidates = 1;
  cfg.adaptive.retrain_history_cap = 120;
  return cfg;
}

TEST(FaultInjector, SpecParsingAcceptsAllKeys) {
  const auto sites = fault::parse_fault_spec(
      "checkpoint.write:p=0.3,retrain.hang:after=5:n=2:mode=sleep:ms=250");
  ASSERT_EQ(sites.size(), 2u);
  const auto& cw = sites.at("checkpoint.write");
  EXPECT_DOUBLE_EQ(cw.probability, 0.3);
  EXPECT_EQ(cw.after, 0u);
  EXPECT_EQ(cw.mode, fault::SiteSpec::Mode::kThrow);
  const auto& rh = sites.at("retrain.hang");
  EXPECT_DOUBLE_EQ(rh.probability, 1.0);
  EXPECT_EQ(rh.after, 5u);
  EXPECT_EQ(rh.max_fires, 2u);
  EXPECT_EQ(rh.mode, fault::SiteSpec::Mode::kSleep);
  EXPECT_DOUBLE_EQ(rh.sleep_ms, 250.0);
}

TEST(FaultInjector, SpecParsingRejectsMalformedInput) {
  EXPECT_THROW((void)fault::parse_fault_spec("site:p=zebra"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec("site:bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec(":p=1"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec("site:p"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec("site:mode=explode"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec("site:p=1.5"), std::invalid_argument);
}

TEST(FaultInjector, DisabledInjectorIsInertAndCountsNothing) {
  const InjectorGuard guard;
  EXPECT_FALSE(fault::Injector::enabled());
  for (int i = 0; i < 100; ++i) {
    LD_FAULT_POINT("never.configured");
    EXPECT_FALSE(LD_FAULT_FIRES("never.configured"));
  }
  EXPECT_EQ(fault::Injector::instance().pass_count("never.configured"), 0u);
  EXPECT_EQ(fault::Injector::instance().total_fires(), 0u);
}

TEST(FaultInjector, DeterministicFireSequenceAcrossReconfigure) {
  const InjectorGuard guard;
  auto& injector = fault::Injector::instance();

  const auto sample = [&] {
    injector.configure("coin:p=0.5", 99);
    std::vector<bool> fires;
    fires.reserve(256);
    for (int i = 0; i < 256; ++i) fires.push_back(injector.fires("coin"));
    return fires;
  };
  const std::vector<bool> first = sample();
  const std::vector<bool> second = sample();
  EXPECT_EQ(first, second) << "same seed must replay the same fire sequence";

  // The sequence is a real mix, not all-or-nothing.
  const auto fired = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 64u);
  EXPECT_LT(fired, 192u);

  injector.configure("coin:p=0.5", 100);
  std::vector<bool> reseeded;
  for (int i = 0; i < 256; ++i) reseeded.push_back(injector.fires("coin"));
  EXPECT_NE(first, reseeded) << "a different seed must change the sequence";
}

TEST(FaultInjector, AfterSkipsPassesAndMaxFiresCaps) {
  const InjectorGuard guard;
  auto& injector = fault::Injector::instance();
  injector.configure("site:p=1:after=3:n=2", 1);
  std::vector<bool> fires;
  for (int i = 0; i < 8; ++i) fires.push_back(injector.fires("site"));
  const std::vector<bool> expected{false, false, false, true, true, false, false, false};
  EXPECT_EQ(fires, expected);
  EXPECT_EQ(injector.pass_count("site"), 8u);
  EXPECT_EQ(injector.fire_count("site"), 2u);
  EXPECT_EQ(injector.total_fires(), 2u);
}

TEST(FaultInjector, CheckThrowsForThrowModeAndSleepsForSleepMode) {
  const InjectorGuard guard;
  auto& injector = fault::Injector::instance();
  injector.configure("boom:p=1,nap:p=1:mode=sleep:ms=1", 5);

  try {
    LD_FAULT_POINT("boom");
    FAIL() << "throw-mode site did not throw";
  } catch (const fault::FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "boom");
  }
  EXPECT_EQ(injector.fire_count("boom"), 1u);

  EXPECT_NO_THROW(LD_FAULT_POINT("nap"));  // sleep mode blocks, never unwinds
  EXPECT_EQ(injector.fire_count("nap"), 1u);

  // delay() never throws, even for a throw-mode site (the pool-worker case).
  EXPECT_NO_THROW(LD_FAULT_DELAY("boom"));
  EXPECT_EQ(injector.fire_count("boom"), 2u);

  // Unknown sites pass through untouched while the injector is on.
  EXPECT_FALSE(injector.fires("unknown.site"));
  EXPECT_NO_THROW(LD_FAULT_POINT("unknown.site"));
}

TEST(FaultInjector, ConcurrentPassesAreCountedExactly) {
  const InjectorGuard guard;
  auto& injector = fault::Injector::instance();
  injector.configure("hot:p=0.5:mode=sleep:ms=0", 17);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 2000;
  std::atomic<std::uint64_t> observed{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      std::uint64_t local = 0;
      for (std::size_t i = 0; i < kPerThread; ++i)
        if (injector.fires("hot")) ++local;
      observed.fetch_add(local, std::memory_order_relaxed);
    });
  for (auto& th : workers) th.join();
  EXPECT_EQ(injector.pass_count("hot"), kThreads * kPerThread);
  EXPECT_EQ(injector.fire_count("hot"), observed.load());
}

TEST(FaultBackoff, ScheduleIsDeterministicCappedAndJittered) {
  fault::RetryPolicy policy;
  policy.initial_backoff_seconds = 0.05;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.4;
  policy.jitter = 0.25;

  Rng a(42), b(42);
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const double wait_a = fault::backoff_seconds(policy, attempt, a);
    const double wait_b = fault::backoff_seconds(policy, attempt, b);
    EXPECT_EQ(wait_a, wait_b) << "same seed must produce the same schedule";
    const double base =
        std::min(0.05 * std::pow(2.0, static_cast<double>(attempt)), 0.4);
    EXPECT_GE(wait_a, base * 0.75);
    EXPECT_LE(wait_a, base * 1.25);
  }

  // Zero jitter: the schedule is exactly the capped exponential.
  policy.jitter = 0.0;
  Rng c(1);
  EXPECT_DOUBLE_EQ(fault::backoff_seconds(policy, 0, c), 0.05);
  EXPECT_DOUBLE_EQ(fault::backoff_seconds(policy, 1, c), 0.1);
  EXPECT_DOUBLE_EQ(fault::backoff_seconds(policy, 10, c), 0.4);
}

TEST(FaultWatchdog, CancelScopeNestsAndRestores) {
  EXPECT_FALSE(fault::cancellation_requested());
  fault::CancelToken outer;
  {
    const fault::CancelScope outer_scope(&outer);
    EXPECT_FALSE(fault::cancellation_requested());
    fault::CancelToken inner;
    inner.cancel();
    {
      const fault::CancelScope inner_scope(&inner);
      EXPECT_TRUE(fault::cancellation_requested());
    }
    EXPECT_FALSE(fault::cancellation_requested());  // back to the outer token
    outer.cancel();
    EXPECT_TRUE(fault::cancellation_requested());
  }
  EXPECT_FALSE(fault::cancellation_requested());
}

TEST(FaultWatchdog, InlinePathClassifiesOutcomes) {
  fault::Supervisor supervisor;
  std::string error;
  bool permanent = true;

  EXPECT_EQ(supervisor.run([] {}, 0.0, &error, &permanent),
            fault::TaskStatus::kCompleted);
  EXPECT_FALSE(permanent);

  EXPECT_EQ(supervisor.run([] { throw std::runtime_error("transient"); }, 0.0, &error,
                           &permanent),
            fault::TaskStatus::kFailed);
  EXPECT_EQ(error, "transient");
  EXPECT_FALSE(permanent) << "runtime errors are retryable";

  EXPECT_EQ(supervisor.run([] { throw std::invalid_argument("bad config"); }, 0.0, &error,
                           &permanent),
            fault::TaskStatus::kFailed);
  EXPECT_TRUE(permanent) << "invalid_argument means retrying cannot help";
  EXPECT_EQ(supervisor.orphaned(), 0u);
}

TEST(FaultWatchdog, SupervisedPathCompletesFailsAndTimesOut) {
  fault::Supervisor supervisor;
  std::string error;
  bool permanent = false;

  EXPECT_EQ(supervisor.run([] {}, 5.0, &error, &permanent),
            fault::TaskStatus::kCompleted);
  EXPECT_EQ(supervisor.run([] { throw std::logic_error("broken"); }, 5.0, &error,
                           &permanent),
            fault::TaskStatus::kFailed);
  EXPECT_EQ(error, "broken");
  EXPECT_TRUE(permanent);

  // A cooperative hang: cancellable_sleep observes the watchdog's cancel, so
  // the timed-out attempt unwinds promptly instead of hanging for 30s.
  const Stopwatch clock;
  EXPECT_EQ(supervisor.run([] { fault::cancellable_sleep(30.0); }, 0.05, &error,
                           &permanent),
            fault::TaskStatus::kTimedOut);
  EXPECT_LT(clock.seconds(), 5.0);
  EXPECT_FALSE(permanent);
  // The cancelled sleep returns within the grace window or shortly after;
  // either way the next run (and the destructor) reaps it without blocking.
  EXPECT_EQ(supervisor.run([] {}, 1.0, &error, &permanent),
            fault::TaskStatus::kCompleted);
}

TEST(FaultFallback, AllFiniteAndBaselineForecast) {
  EXPECT_TRUE(fault::all_finite(std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_FALSE(
      fault::all_finite(std::vector<double>{1.0, std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(
      fault::all_finite(std::vector<double>{std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(fault::all_finite(std::span<const double>{}));

  const std::vector<double> history{10.0, 20.0, 30.0};
  const auto forecast = fault::baseline_forecast(history, 3, 0.5);
  ASSERT_EQ(forecast.size(), 3u);
  // EWMA from the front: 10 -> 15 -> 22.5, repeated across the horizon.
  for (const double v : forecast) EXPECT_DOUBLE_EQ(v, 22.5);

  EXPECT_THROW((void)fault::baseline_forecast({}, 1), std::invalid_argument);
  EXPECT_THROW((void)fault::baseline_forecast(history, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fault::baseline_forecast(history, 1, 1.5), std::invalid_argument);
}

TEST(FaultSanitize, DropsNonFiniteAndNegativeInOrder) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  csv::SanitizeStats stats;
  const auto clean = csv::sanitize_loads({1.0, nan, 2.0, inf, -inf, -3.0, 0.0}, &stats);
  EXPECT_EQ(clean, (std::vector<double>{1.0, 2.0, 0.0}));
  EXPECT_EQ(stats.rejected_nan, 1u);
  EXPECT_EQ(stats.rejected_inf, 2u);
  EXPECT_EQ(stats.rejected_negative, 1u);
  EXPECT_EQ(stats.total(), 4u);
}

TEST(FaultServing, ObserveRejectsBadSamplesAndCountsThem) {
  const InjectorGuard guard;
  serving::PredictionService service(quick_service());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  service.observe_many("web", std::vector<double>{100.0, nan, 101.0, inf, -5.0, 102.0});

  const serving::WorkloadStats stats = service.stats("web");
  EXPECT_EQ(stats.observations, 3u) << "rejected samples must not count as observed";
  EXPECT_EQ(stats.history_size, 3u);
  EXPECT_EQ(stats.rejected, 3u);
}

TEST(FaultServing, FallbackChainOrderBaselineThenSnapshot) {
  const InjectorGuard guard;
  const auto series = seasonal(240);
  serving::PredictionService service(quick_service());
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  // Sanity: healthy path answers live.
  const auto live = service.predict_detailed("web", 4);
  EXPECT_EQ(live.level, fault::DegradationLevel::kLive);
  EXPECT_EQ(live.version, 1u);
  EXPECT_TRUE(fault::all_finite(live.forecast));

  // Corrupt every live forecast. With only one version ever published there
  // is no last-good snapshot, so the chain bottoms out at the EWMA baseline.
  fault::Injector::instance().configure("predict.nan:p=1", 11);
  const auto degraded = service.predict_detailed("web", 4);
  EXPECT_EQ(degraded.level, fault::DegradationLevel::kBaseline);
  EXPECT_EQ(degraded.version, 0u);
  ASSERT_EQ(degraded.forecast.size(), 4u);
  EXPECT_TRUE(fault::all_finite(degraded.forecast));

  // Publish v2: v1 becomes the last-known-good snapshot, the preferred
  // fallback over the baseline.
  fault::Injector::instance().reset();
  service.publish("web", *quick_model(series, 8));
  fault::Injector::instance().configure("predict.nan:p=1", 11);
  const auto snapshot = service.predict_detailed("web", 4);
  EXPECT_EQ(snapshot.level, fault::DegradationLevel::kSnapshot);
  EXPECT_EQ(snapshot.version, 1u) << "fallback must answer from the previous version";
  EXPECT_TRUE(fault::all_finite(snapshot.forecast));

  fault::Injector::instance().reset();
  const serving::WorkloadStats stats = service.stats("web");
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.last_level, fault::DegradationLevel::kSnapshot);
  EXPECT_EQ(service.predict_detailed("web", 2).level, fault::DegradationLevel::kLive);
}

TEST(FaultServing, RetrainRetriesWithBackoffThenGivesUp) {
  const InjectorGuard guard;
  const auto series = seasonal(240);
  serving::ServiceConfig cfg = quick_service();
  cfg.retrain_retry.max_attempts = 2;
  cfg.retrain_retry.initial_backoff_seconds = 0.001;
  cfg.retrain_retry.max_backoff_seconds = 0.002;
  serving::PredictionService service(cfg);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  fault::Injector::instance().configure("retrain.fail:p=1", 3);
  ASSERT_TRUE(service.request_retrain("web"));
  service.wait_idle();
  fault::Injector::instance().reset();

  const serving::WorkloadStats stats = service.stats("web");
  EXPECT_EQ(stats.retrain_failures, 2u) << "both attempts must fail";
  EXPECT_EQ(stats.retrain_retries, 1u) << "one retry beyond the first attempt";
  EXPECT_EQ(stats.retrain_timeouts, 0u);
  EXPECT_EQ(stats.version, 1u) << "the incumbent model must keep serving";
  EXPECT_EQ(fault::Injector::instance().total_fires(), 0u);  // reset cleared counts
  EXPECT_TRUE(fault::all_finite(service.predict("web", 4)));
}

TEST(FaultServing, WatchdogCancelsHungRetrain) {
  const InjectorGuard guard;
  const auto series = seasonal(240);
  serving::ServiceConfig cfg = quick_service();
  cfg.retrain_timeout_seconds = 0.2;
  cfg.retrain_retry.max_attempts = 1;
  serving::PredictionService service(cfg);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);

  // The injected hang sleeps cooperatively for far longer than the deadline;
  // the watchdog must cancel it and the incumbent must keep serving.
  fault::Injector::instance().configure("retrain.hang:p=1:mode=sleep:ms=30000", 3);
  const Stopwatch clock;
  ASSERT_TRUE(service.request_retrain("web"));
  service.wait_idle();
  fault::Injector::instance().reset();
  EXPECT_LT(clock.seconds(), 20.0) << "a hung attempt must not block the worker";

  const serving::WorkloadStats stats = service.stats("web");
  EXPECT_EQ(stats.retrain_timeouts, 1u);
  EXPECT_EQ(stats.retrain_failures, 1u);
  EXPECT_EQ(stats.version, 1u);
  EXPECT_TRUE(fault::all_finite(service.predict("web", 4)));
}

TEST(FaultRegistry, ToleratesThrowingReplicaDropMidSwap) {
  const auto series = seasonal(240);
  const auto model_v1 = quick_model(series);
  const auto model_v2 = quick_model(series, 8);

  serving::ModelRegistry registry;
  registry.publish("web", serving::PublishedModel::make(*model_v1, 1, 2));

  // Every drop from here on throws out of ~PublishedModel; the make() deleter
  // must swallow it (shared_ptr::reset and the registry map's destructor are
  // noexcept — an escape would terminate the process).
  serving::PublishedModel::destroy_hook_for_test = [] {
    throw std::runtime_error("injected teardown failure");
  };
  registry.publish("web", serving::PublishedModel::make(*model_v2, 2, 2));
  serving::PublishedModel::destroy_hook_for_test = nullptr;

  const auto current = registry.current("web");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), 2u);
  EXPECT_TRUE(std::isfinite(current->predict_next(series)));
}

}  // namespace
