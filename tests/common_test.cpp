// Common utilities: RNG distributions and determinism, metrics, CSV, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace {

using ld::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(42);
  Rng b = a.split();
  Rng c = a.split();
  EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const long long v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

class PoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMean, MatchesLambda) {
  const double lambda = GetParam();
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, 4.0 * std::sqrt(lambda / n)));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMean,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 500.0, 50000.0));

TEST(Rng, GammaMeanMatchesShapeScale) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(2.5, 3.0);
  EXPECT_NEAR(sum / n, 7.5, 0.2);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(5);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (const std::size_t idx : perm) {
    ASSERT_LT(idx, 100u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(Metrics, MapeBasic) {
  const std::vector<double> actual{100.0, 200.0};
  const std::vector<double> pred{110.0, 180.0};
  EXPECT_NEAR(ld::metrics::mape(actual, pred), 10.0, 1e-12);
}

TEST(Metrics, MapeSkipsZeroActuals) {
  const std::vector<double> actual{0.0, 100.0};
  const std::vector<double> pred{50.0, 150.0};
  EXPECT_NEAR(ld::metrics::mape(actual, pred), 50.0, 1e-12);
}

TEST(Metrics, PerfectPredictionIsZeroError) {
  const std::vector<double> x{3.0, 1.0, 4.0, 1.5};
  EXPECT_EQ(ld::metrics::mape(x, x), 0.0);
  EXPECT_EQ(ld::metrics::mae(x, x), 0.0);
  EXPECT_EQ(ld::metrics::rmse(x, x), 0.0);
  EXPECT_NEAR(ld::metrics::r2(x, x), 1.0, 1e-12);
}

TEST(Metrics, ScaleInvarianceOfMape) {
  const std::vector<double> actual{10.0, 20.0, 30.0};
  const std::vector<double> pred{12.0, 18.0, 33.0};
  std::vector<double> actual_scaled, pred_scaled;
  for (double v : actual) actual_scaled.push_back(v * 1000.0);
  for (double v : pred) pred_scaled.push_back(v * 1000.0);
  EXPECT_NEAR(ld::metrics::mape(actual, pred), ld::metrics::mape(actual_scaled, pred_scaled),
              1e-9);
}

TEST(Metrics, MismatchedOrEmptyThrows) {
  const std::vector<double> a{1.0, 2.0}, b{1.0};
  EXPECT_THROW((void)ld::metrics::mape(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)ld::metrics::mape(empty, empty), std::invalid_argument);
}

TEST(Metrics, SmapeBounded) {
  const std::vector<double> actual{1.0, 5.0, 10.0};
  const std::vector<double> pred{100.0, 0.1, -10.0};
  const double s = ld::metrics::smape(actual, pred);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 200.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketRelativeError) {
  ld::metrics::LatencyHistogram h(1e-6, 10.0);
  // 1ms..1000ms, uniform: p50 ~ 0.5s, p95 ~ 0.95s, p99 ~ 0.99s.
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double expected = p / 100.0;
    EXPECT_NEAR(h.percentile(p), expected, 0.05 * expected)
        << "geometric buckets promise ~4% relative error at p" << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.0) << "p100 is the exact max";
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min()) << "p0 is the exact min";
}

TEST(LatencyHistogram, PercentileZeroReturnsExactMin) {
  // Regression: p0 used to return the upper edge of the first occupied
  // bucket, which overshoots the smallest sample by up to a bucket width.
  ld::metrics::LatencyHistogram h(1e-6, 10.0);
  h.record(1e-3);
  h.record(0.5);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_GE(h.percentile(0.1), h.percentile(0.0))
      << "percentiles stay monotone at the bottom";
  // Negative inputs clamp to p0 as well.
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 1e-3);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  ld::metrics::LatencyHistogram a(1e-6, 10.0), b(1e-6, 10.0), combined(1e-6, 10.0);
  for (int i = 1; i <= 500; ++i) {
    const double low = static_cast<double>(i) * 1e-5;
    const double high = static_cast<double>(i) * 1e-2;
    a.record(low);
    b.record(high);
    combined.record(low);
    combined.record(high);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.total(), combined.total(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p));
}

TEST(LatencyHistogram, EmptyAndInvalidInputs) {
  ld::metrics::LatencyHistogram h(1e-6, 10.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  EXPECT_THROW(h.record(-1.0), std::invalid_argument);
  EXPECT_THROW(h.record(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_THROW(h.record(std::numeric_limits<double>::infinity()), std::invalid_argument);
  h.record(0.0);  // zero latency is legal and lands in the first bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(99.0), 0.0);

  ld::metrics::LatencyHistogram other(1e-3, 10.0);
  EXPECT_THROW(h.merge(other), std::invalid_argument);
  EXPECT_THROW(ld::metrics::LatencyHistogram(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ld::metrics::LatencyHistogram(1.0, 0.5), std::invalid_argument);
}

TEST(LatencyHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  ld::metrics::LatencyHistogram h(1e-3, 1.0);
  h.record(1e-6);  // below min bucket
  h.record(5.0);   // above max bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 5.0) << "min/max stay exact even when buckets saturate";
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
}

TEST(Csv, ParseWithHeaderAndQuotes) {
  const auto table = ld::csv::parse("a,b\n1,\"x,\"\"y\"\"\"\n2,z\n");
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][1], "x,\"y\"");
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW((void)table.column("missing"), std::out_of_range);
}

TEST(Csv, NumericColumnAndErrors) {
  const auto table = ld::csv::parse("v\n1.5\n2.5\n");
  const auto col = ld::csv::numeric_column(table, 0);
  EXPECT_EQ(col, (std::vector<double>{1.5, 2.5}));
  const auto bad = ld::csv::parse("v\nnot_a_number\n");
  EXPECT_THROW((void)ld::csv::numeric_column(bad, 0), std::invalid_argument);
}

TEST(Csv, WriteReadRoundTrip) {
  const ld::testutil::ScopedTempDir tmp("csv");
  const std::string path = tmp.file("round_trip.csv");
  ld::csv::write_file(path, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
  const auto table = ld::csv::read_file(path);
  EXPECT_EQ(table.header, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(ld::csv::numeric_column(table, 1), (std::vector<double>{2.0, 4.0}));
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW((void)ld::csv::read_file("/nonexistent/definitely_missing.csv"),
               std::runtime_error);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha", "3",     "--beta=0.5", "--verbose=true",
                        "pos1", "--gamma", "hello", "pos2", "--quick"};
  const ld::cli::Args args(10, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_bool("quick"));  // trailing bare flag
  EXPECT_EQ(args.get("gamma", ""), "hello");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

}  // namespace
