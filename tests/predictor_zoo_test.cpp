// Cross-cutting invariants over the whole predictor zoo: every forecaster
// in the library must clone faithfully, produce finite forecasts on
// realistic traces, and degrade gracefully on short histories.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "baselines/cloudinsight.hpp"
#include "baselines/cloudscale.hpp"
#include "baselines/wood.hpp"
#include "mlmodels/ensembles.hpp"
#include "mlmodels/polynomial.hpp"
#include "mlmodels/svr.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/holtwinters.hpp"
#include "timeseries/knn.hpp"
#include "timeseries/smoothing.hpp"

namespace {

using namespace ld;

std::vector<std::unique_ptr<ts::Predictor>> full_zoo() {
  auto zoo = baselines::make_cloudinsight_pool(/*light=*/true);
  zoo.push_back(std::make_unique<ts::HoltWintersPredictor>());
  zoo.push_back(std::make_unique<baselines::CloudScalePredictor>());
  zoo.push_back(std::make_unique<baselines::WoodPredictor>());
  return zoo;
}

std::vector<double> realistic_series(std::size_t n) {
  Rng rng(77);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = 100.0 +
             30.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0) +
             rng.normal(0.0, 5.0);
  return out;
}

TEST(PredictorZoo, EveryPredictorProducesFiniteForecasts) {
  const auto series = realistic_series(300);
  for (auto& p : full_zoo()) {
    p->fit(std::span<const double>(series).subspan(0, 250));
    for (std::size_t t = 250; t < 260; ++t) {
      const double v = p->predict_next(std::span<const double>(series).subspan(0, t));
      EXPECT_TRUE(std::isfinite(v)) << p->name() << " at t=" << t;
      EXPECT_GE(v, -1e6) << p->name();
      EXPECT_LE(v, 1e6) << p->name();
    }
  }
}

TEST(PredictorZoo, ClonePredictsIdenticallyAfterFit) {
  const auto series = realistic_series(300);
  const std::span<const double> all(series);
  for (auto& p : full_zoo()) {
    p->fit(all.subspan(0, 250));
    const auto clone = p->clone();
    // Clones of deterministic fitted models must agree exactly.
    const double a = p->predict_next(all.subspan(0, 260));
    const double b = clone->predict_next(all.subspan(0, 260));
    EXPECT_EQ(a, b) << p->name();
  }
}

TEST(PredictorZoo, NamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (auto& p : full_zoo()) names.push_back(p->name());
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate predictor names would corrupt leaderboards";
  // Clone preserves the name.
  for (auto& p : full_zoo()) EXPECT_EQ(p->name(), p->clone()->name());
}

TEST(PredictorZoo, SurvivesTwoPointHistory) {
  const std::vector<double> tiny{10.0, 12.0};
  for (auto& p : full_zoo()) {
    p->fit(tiny);
    EXPECT_NO_THROW({
      const double v = p->predict_next(tiny);
      EXPECT_TRUE(std::isfinite(v)) << p->name();
    }) << p->name();
  }
}

TEST(PredictorZoo, EmptyHistoryAlwaysThrows) {
  const std::vector<double> empty;
  for (auto& p : full_zoo())
    EXPECT_THROW((void)p->predict_next(empty), std::invalid_argument) << p->name();
}

TEST(PredictorZoo, RefitImprovesOrMatchesOnDriftingSeries) {
  // Global sanity: for each model, walk-forward with refits should not be
  // substantially worse than a frozen fit on a series with a level shift.
  std::vector<double> series(300, 50.0);
  for (std::size_t i = 150; i < series.size(); ++i) series[i] = 150.0;
  for (auto& p : full_zoo()) {
    auto frozen = p->clone();
    const auto adaptive_preds = ts::walk_forward(*p, series, 200, {.refit_every = 10});
    const auto frozen_preds = ts::walk_forward(*frozen, series, 200, {});
    double adaptive_err = 0.0, frozen_err = 0.0;
    for (std::size_t i = 0; i < adaptive_preds.size(); ++i) {
      adaptive_err += std::abs(adaptive_preds[i] - series[200 + i]);
      frozen_err += std::abs(frozen_preds[i] - series[200 + i]);
    }
    EXPECT_LE(adaptive_err, frozen_err * 1.5 + 10.0) << p->name();
  }
}

}  // namespace
