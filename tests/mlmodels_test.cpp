// ML substrate: polynomial trend models, the SVR dual solver, CART trees and
// the three ensemble variants.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "mlmodels/ensembles.hpp"
#include "mlmodels/polynomial.hpp"
#include "mlmodels/svr.hpp"
#include "mlmodels/tree.hpp"

namespace {

using namespace ld::ml;
using ld::Rng;
using ld::tensor::Matrix;

std::vector<double> poly_series(std::size_t n, double a, double b, double c) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    out[i] = a + b * t + c * t * t;
  }
  return out;
}

// --- Polynomial regression ---------------------------------------------------

TEST(Polynomial, LinearExtrapolatesLine) {
  const auto series = poly_series(50, 2.0, 3.0, 0.0);
  PolynomialTrendPredictor global(1, RegressionScope::kGlobal);
  PolynomialTrendPredictor local(1, RegressionScope::kLocal, 24);
  const double expected = 2.0 + 3.0 * 50.0;
  EXPECT_NEAR(global.predict_next(series), expected, 1e-6);
  EXPECT_NEAR(local.predict_next(series), expected, 1e-6);
}

TEST(Polynomial, QuadraticFitsParabola) {
  const auto series = poly_series(40, 1.0, 0.5, 0.25);
  PolynomialTrendPredictor quad(2, RegressionScope::kGlobal);
  const double t = 40.0;
  EXPECT_NEAR(quad.predict_next(series), 1.0 + 0.5 * t + 0.25 * t * t, 1e-4);
  // A linear model must underestimate a convex parabola's next value.
  PolynomialTrendPredictor lin(1, RegressionScope::kGlobal);
  EXPECT_LT(lin.predict_next(series), quad.predict_next(series));
}

TEST(Polynomial, CubicFitsCubicLocally) {
  std::vector<double> series(30);
  for (std::size_t i = 0; i < 30; ++i) {
    const double t = static_cast<double>(i) / 10.0;
    series[i] = t * t * t - t;
  }
  PolynomialTrendPredictor cubic(3, RegressionScope::kGlobal);
  const double t_next = 3.0;
  EXPECT_NEAR(cubic.predict_next(series), t_next * t_next * t_next - t_next, 0.05);
}

TEST(Polynomial, LocalAdaptsToRecentBreakFasterThanGlobal) {
  // Flat for 80 steps, then a steep line: local window sees only the line.
  std::vector<double> series(100, 10.0);
  for (std::size_t i = 80; i < 100; ++i)
    series[i] = 10.0 + 5.0 * static_cast<double>(i - 79);
  PolynomialTrendPredictor local(1, RegressionScope::kLocal, 12);
  PolynomialTrendPredictor global(1, RegressionScope::kGlobal);
  const double actual_next = 10.0 + 5.0 * 21.0;
  EXPECT_LT(std::abs(local.predict_next(series) - actual_next),
            std::abs(global.predict_next(series) - actual_next));
}

TEST(Polynomial, InvalidDegreeThrows) {
  EXPECT_THROW(PolynomialTrendPredictor(0, RegressionScope::kGlobal), std::invalid_argument);
  EXPECT_THROW(PolynomialTrendPredictor(4, RegressionScope::kGlobal), std::invalid_argument);
  EXPECT_THROW(PolynomialTrendPredictor(3, RegressionScope::kLocal, 3), std::invalid_argument);
}

TEST(Polynomial, NamesMatchTableII) {
  EXPECT_EQ(PolynomialTrendPredictor(1, RegressionScope::kGlobal).name(), "linear_global");
  EXPECT_EQ(PolynomialTrendPredictor(3, RegressionScope::kLocal, 24).name(), "cubic_local");
}

// --- SVR -----------------------------------------------------------------------

TEST(Svr, LinearKernelFitsArProcess) {
  Rng rng(3);
  std::vector<double> x(800);
  x[0] = 50.0;
  for (std::size_t i = 1; i < x.size(); ++i)
    x[i] = 10.0 + 0.3 * x[i - 1] + rng.normal(0.0, 1.0);
  SvrConfig cfg;
  cfg.kernel = SvrKernel::kLinear;
  cfg.window = 4;
  SvrPredictor svr(cfg);
  svr.fit(std::span<const double>(x).subspan(0, 700));

  double se = 0.0, naive = 0.0;
  for (std::size_t t = 700; t < 800; ++t) {
    const auto hist = std::span<const double>(x).subspan(0, t);
    const double p = svr.predict_next(hist);
    se += (p - x[t]) * (p - x[t]);
    naive += (x[t - 1] - x[t]) * (x[t - 1] - x[t]);
  }
  EXPECT_LT(se, naive);
  EXPECT_GT(svr.support_vector_count(), 0u);
}

TEST(Svr, RbfKernelFitsNonlinearMap) {
  // Next value = sin of previous: linear models cannot express this.
  std::vector<double> x(600);
  x[0] = 0.3;
  for (std::size_t i = 1; i < x.size(); ++i) x[i] = std::sin(2.5 * x[i - 1]) + 1.5;
  SvrConfig cfg;
  cfg.kernel = SvrKernel::kRbf;
  cfg.window = 2;
  cfg.gamma = 2.0;
  SvrPredictor svr(cfg);
  svr.fit(std::span<const double>(x).subspan(0, 500));
  double worst = 0.0;
  for (std::size_t t = 500; t < 560; ++t) {
    const auto hist = std::span<const double>(x).subspan(0, t);
    worst = std::max(worst, std::abs(svr.predict_next(hist) - x[t]));
  }
  EXPECT_LT(worst, 0.25);
}

TEST(Svr, ShortHistoryFallsBack) {
  SvrPredictor svr;
  const std::vector<double> tiny{1.0, 2.0};
  svr.fit(tiny);
  EXPECT_EQ(svr.predict_next(tiny), 2.0);
}

TEST(Svr, InvalidConfigThrows) {
  SvrConfig bad;
  bad.c = -1.0;
  EXPECT_THROW(SvrPredictor{bad}, std::invalid_argument);
  SvrConfig zero_window;
  zero_window.window = 0;
  EXPECT_THROW(SvrPredictor{zero_window}, std::invalid_argument);
}

// --- Regression tree -------------------------------------------------------------

TEST(Tree, FitsPiecewiseConstantExactly) {
  // y = 1 if x < 0.5 else 9: one split suffices.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) < 0.5 ? 1.0 : 9.0;
  }
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  Rng rng(1);
  RegressionTree tree;
  tree.fit(x, y, rows, {.max_depth = 3, .min_samples_leaf = 1, .min_samples_split = 2}, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.2}), 1.0, 1e-12);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.8}), 9.0, 1e-12);
}

TEST(Tree, RespectsMaxDepth) {
  Rng rng(2);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = rng.uniform();
  }
  std::vector<std::size_t> rows(200);
  for (std::size_t i = 0; i < 200; ++i) rows[i] = i;
  RegressionTree tree;
  tree.fit(x, y, rows, {.max_depth = 3, .min_samples_leaf = 1, .min_samples_split = 2}, rng);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(Tree, ConstantTargetsProduceLeaf) {
  Matrix x(10, 2);
  std::vector<double> y(10, 4.0);
  std::vector<std::size_t> rows(10);
  for (std::size_t i = 0; i < 10; ++i) {
    rows[i] = i;
    x(i, 0) = static_cast<double>(i);
  }
  Rng rng(3);
  RegressionTree tree;
  tree.fit(x, y, rows, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0, 0.0}), 4.0);
}

// --- Ensembles ------------------------------------------------------------------

class EnsembleKindTest : public ::testing::TestWithParam<EnsembleKind> {};

TEST_P(EnsembleKindTest, PredictionWithinTargetRange) {
  Rng rng(5);
  std::vector<double> series(400);
  for (double& v : series) v = rng.uniform(10.0, 50.0);
  EnsembleConfig cfg;
  cfg.kind = GetParam();
  cfg.window = 6;
  cfg.n_trees = 12;
  TreeEnsemblePredictor model(cfg);
  model.fit(series);
  const double p = model.predict_next(series);
  // Averages of training targets can never leave the observed range.
  EXPECT_GE(p, 10.0);
  EXPECT_LE(p, 50.0);
}

TEST_P(EnsembleKindTest, LearnsSeasonalSignal) {
  std::vector<double> series(600);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] =
        50.0 + 20.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 12.0);
  EnsembleConfig cfg;
  cfg.kind = GetParam();
  cfg.window = 12;
  cfg.n_trees = 25;
  TreeEnsemblePredictor model(cfg);
  model.fit(std::span<const double>(series).subspan(0, 500));
  double worst = 0.0;
  for (std::size_t t = 500; t < 560; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    worst = std::max(worst, std::abs(model.predict_next(hist) - series[t]));
  }
  EXPECT_LT(worst, 8.0);  // within 40% of the amplitude at worst
}

INSTANTIATE_TEST_SUITE_P(Kinds, EnsembleKindTest,
                         ::testing::Values(EnsembleKind::kDecisionTree,
                                           EnsembleKind::kRandomForest,
                                           EnsembleKind::kExtraTrees,
                                           EnsembleKind::kGradientBoosting));

TEST(Ensembles, ForestAveragesReduceSingleTreeVariance) {
  Rng rng(7);
  // Noisy linear target.
  std::vector<double> series(500);
  series[0] = 100.0;
  for (std::size_t i = 1; i < series.size(); ++i)
    series[i] = 0.9 * series[i - 1] + 10.0 + rng.normal(0.0, 5.0);
  auto eval = [&](EnsembleConfig cfg) {
    TreeEnsemblePredictor model(cfg);
    model.fit(std::span<const double>(series).subspan(0, 400));
    double se = 0.0;
    for (std::size_t t = 400; t < 500; ++t) {
      const auto hist = std::span<const double>(series).subspan(0, t);
      const double p = model.predict_next(hist);
      se += (p - series[t]) * (p - series[t]);
    }
    return se;
  };
  const double forest_se = eval(random_forest_config(6, 40));
  const double tree_se = eval(decision_tree_config(6));
  EXPECT_LT(forest_se, tree_se * 1.1);  // bagging should not be (much) worse
}

TEST(Ensembles, GradientBoostingImprovesWithMoreTrees) {
  std::vector<double> series(400);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] =
        30.0 + 10.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  auto eval = [&](std::size_t n_trees) {
    EnsembleConfig cfg = gradient_boosting_config(8, n_trees);
    TreeEnsemblePredictor model(cfg);
    model.fit(std::span<const double>(series).subspan(0, 340));
    double se = 0.0;
    for (std::size_t t = 340; t < 400; ++t) {
      const auto hist = std::span<const double>(series).subspan(0, t);
      const double p = model.predict_next(hist);
      se += (p - series[t]) * (p - series[t]);
    }
    return se;
  };
  EXPECT_LT(eval(60), eval(3));
}

TEST(Ensembles, DeterministicGivenSeed) {
  Rng rng(9);
  std::vector<double> series(300);
  for (double& v : series) v = rng.uniform(0.0, 10.0);
  EnsembleConfig cfg = random_forest_config(5, 10);
  TreeEnsemblePredictor a(cfg), b(cfg);
  a.fit(series);
  b.fit(series);
  EXPECT_EQ(a.predict_next(series), b.predict_next(series));
}

TEST(Ensembles, InvalidConfigThrows) {
  EnsembleConfig bad;
  bad.window = 0;
  EXPECT_THROW(TreeEnsemblePredictor{bad}, std::invalid_argument);
  EnsembleConfig bad2 = random_forest_config();
  bad2.subsample = 0.0;
  EXPECT_THROW(TreeEnsemblePredictor{bad2}, std::invalid_argument);
}

}  // namespace
