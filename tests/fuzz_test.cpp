// Deterministic fuzz drivers (ctest label: fuzz). Each driver runs a fixed
// seeded mutation budget against one parser and asserts zero invariant
// violations; the crash corpus under tests/golden/corpus/ is replayed as a
// plain regression suite. A failure report prints the exact offending bytes,
// and (driver seed, iteration) reproduces it forever.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "verify/fuzz.hpp"

#ifndef LD_CORPUS_DIR
#define LD_CORPUS_DIR "tests/golden/corpus"
#endif

namespace {

using namespace ld;

constexpr std::size_t kBudget = 1024;  ///< mutations per driver per CI run

/// Render a failed report for the gtest failure message.
std::string describe(const verify::FuzzReport& report) {
  std::string out = report.summary();
  for (const auto& f : report.failures) {
    out += "\n  iter " + std::to_string(f.iteration) + ": " + f.message;
    out += "\n  input bytes: [" + f.input + "]";
  }
  return out;
}

class FuzzDrivers : public ::testing::Test {
 protected:
  // The protocol target feeds a service garbage on purpose; silence the
  // expected rejection warnings so a real failure stands out.
  void SetUp() override { log::set_level(log::Level::kError); }
  void TearDown() override { log::set_level(log::Level::kInfo); }
};

TEST_F(FuzzDrivers, MutatorIsDeterministic) {
  const std::string seed_input = "PREDICT wiki 4\nOBSERVE wiki 99.5\n";
  verify::Mutator a{Rng(123)}, b{Rng(123)}, c{Rng(124)};
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    const std::string ma = a.mutate(seed_input);
    EXPECT_EQ(ma, b.mutate(seed_input)) << "same seed must give the same mutation " << i;
    if (ma != c.mutate(seed_input)) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "different seeds should explore differently";
}

TEST_F(FuzzDrivers, LineProtocolSurvivesBudget) {
  const verify::FuzzReport report = verify::run_fuzz(
      verify::protocol_seeds(), verify::make_protocol_target(), /*seed=*/0xF00D01, kBudget);
  EXPECT_EQ(report.iterations, kBudget);
  EXPECT_EQ(report.accepted + report.rejected + report.failures.size(), kBudget);
  EXPECT_TRUE(report.ok()) << describe(report);
  // The mutator must not degenerate into producing only rejects: a healthy
  // structure-aware corpus keeps exercising the accept paths too.
  EXPECT_GT(report.accepted, kBudget / 20) << report.summary();
}

TEST_F(FuzzDrivers, CsvIngestSurvivesBudget) {
  const verify::FuzzReport report = verify::run_fuzz(
      verify::csv_seeds(), verify::make_csv_target(), /*seed=*/0xF00D02, kBudget);
  EXPECT_EQ(report.iterations, kBudget);
  EXPECT_TRUE(report.ok()) << describe(report);
  EXPECT_GT(report.accepted, kBudget / 20) << report.summary();
}

TEST_F(FuzzDrivers, CheckpointLoaderSurvivesBudget) {
  const verify::FuzzReport report =
      verify::run_fuzz(verify::checkpoint_seeds(), verify::make_checkpoint_target(),
                       /*seed=*/0xF00D03, kBudget);
  EXPECT_EQ(report.iterations, kBudget);
  EXPECT_TRUE(report.ok()) << describe(report);
  // Most mutations of a checksummed format must be rejected (the CRC works),
  // but the v1 seed keeps some accepts alive.
  EXPECT_GT(report.rejected, kBudget / 2) << report.summary();
}

TEST_F(FuzzDrivers, BinaryFrameCodecSurvivesBudget) {
  const verify::FuzzReport report = verify::run_fuzz(
      verify::frame_seeds(), verify::make_frame_target(), /*seed=*/0xF00D04, kBudget);
  EXPECT_EQ(report.iterations, kBudget);
  EXPECT_TRUE(report.ok()) << describe(report);
  // The decoder never throws: every mutation either decodes (round-trip
  // checked) or terminates the stream cleanly, so nothing counts as a reject.
  EXPECT_EQ(report.rejected, 0u) << report.summary();
}

TEST_F(FuzzDrivers, WalRecordDecoderSurvivesBudget) {
  const verify::FuzzReport report = verify::run_fuzz(
      verify::wal_seeds(), verify::make_wal_target(), /*seed=*/0xF00D05, kBudget);
  EXPECT_EQ(report.iterations, kBudget);
  EXPECT_TRUE(report.ok()) << describe(report);
  // Same contract as the frame codec: decode_record never throws — every
  // mutation either replays cleanly or truncates at the first bad CRC.
  EXPECT_EQ(report.rejected, 0u) << report.summary();
}

TEST_F(FuzzDrivers, CorpusReplaysClean) {
  const struct {
    const char* prefix;
    verify::FuzzTarget target;
  } drivers[] = {
      {"protocol_", verify::make_protocol_target()},
      {"csv_", verify::make_csv_target()},
      {"checkpoint_", verify::make_checkpoint_target()},
      {"frame_", verify::make_frame_target()},
      {"wal_", verify::make_wal_target()},
  };
  std::size_t total = 0;
  for (const auto& d : drivers) {
    const std::vector<std::string> files =
        verify::replay_corpus(LD_CORPUS_DIR, d.prefix, d.target);
    total += files.size();
  }
  EXPECT_GE(total, 12u) << "crash corpus went missing from " << LD_CORPUS_DIR;
}

TEST_F(FuzzDrivers, RunFuzzRejectsEmptyCorpus) {
  EXPECT_THROW((void)verify::run_fuzz({}, verify::make_csv_target(), 1, 1),
               std::invalid_argument);
}

}  // namespace
