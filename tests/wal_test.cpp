// Durability layer (DESIGN.md §15): the WAL record codec (round-trip,
// torn tails, corruption), the per-shard journal (rotation, replay,
// quarantine, compaction), the snapshot manifest (bit-exact render/parse,
// durable save + `.prev` fallback), and PredictionService recovery end to
// end — including a real kill -9: the WalCrash test forks a child process
// that ingests under `--wal-fsync always` semantics and SIGKILLs itself
// mid-traffic, then recovers the wreckage and asserts bit-identical
// forecasts. The TSan CI job runs this file ("Wal" is in its filter): the
// parallel per-shard replay genuinely overlaps on the shared pool.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "fault/injector.hpp"
#include "serving/protocol.hpp"
#include "serving/service.hpp"
#include "test_util.hpp"
#include "wal/journal.hpp"
#include "wal/record.hpp"
#include "wal/snapshot.hpp"

namespace {

using namespace ld;
namespace fs = std::filesystem;

std::shared_ptr<core::TrainedModel> quick_model(std::span<const double> series,
                                                std::uint64_t seed = 7) {
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 6;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(series.subspan(0, n_train),
                                              series.subspan(n_train), hp, training, seed);
}

serving::ServiceConfig quick_service(std::size_t shards = 1) {
  serving::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.replicas = 2;
  cfg.background_retrain = false;  // deterministic versions/retrain counts
  cfg.adaptive.base.space = core::HyperparameterSpace::reduced();
  cfg.adaptive.base.space.history_max = 16;
  cfg.adaptive.base.space.cell_max = 12;
  cfg.adaptive.base.space.layers_max = 1;
  cfg.adaptive.base.training.trainer.max_epochs = 3;
  cfg.adaptive.refresh_candidates = 1;
  cfg.adaptive.retrain_history_cap = 120;
  cfg.adaptive.monitor_window = 16;
  return cfg;
}

/// Slurp a file as raw bytes.
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream slurp;
  slurp << in.rdbuf();
  return slurp.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Values whose bit patterns a decimal round trip could destroy.
const std::vector<double> kExactValues = {120.5, -0.0, 1e-308,
                                          std::nextafter(1.0, 2.0), 98.25};

// ---------------------------------------------------------------------------
// WalRecord: the codec alone, no files.

TEST(WalRecord, RoundTripAllTypes) {
  std::string bytes;
  wal::append_register(bytes, "wiki");
  wal::append_observe(bytes, "az-vm-2017", 12345, kExactValues);
  wal::append_promote(bytes, "gcd-job", 42);

  std::string_view rest = bytes;
  wal::Decoded reg = wal::decode_record(rest);
  ASSERT_EQ(reg.status, wal::DecodeStatus::kRecord);
  EXPECT_EQ(reg.record.type, wal::RecordType::kRegister);
  EXPECT_EQ(reg.record.name, "wiki");
  rest.remove_prefix(reg.consumed);

  wal::Decoded obs = wal::decode_record(rest);
  ASSERT_EQ(obs.status, wal::DecodeStatus::kRecord);
  EXPECT_EQ(obs.record.type, wal::RecordType::kObserve);
  EXPECT_EQ(obs.record.name, "az-vm-2017");
  EXPECT_EQ(obs.record.first_step, 12345u);
  ASSERT_EQ(obs.record.values.size(), kExactValues.size());
  for (std::size_t i = 0; i < kExactValues.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(obs.record.values[i]),
              std::bit_cast<std::uint64_t>(kExactValues[i]))
        << "value " << i << " changed bits through the journal";
  rest.remove_prefix(obs.consumed);

  wal::Decoded promote = wal::decode_record(rest);
  ASSERT_EQ(promote.status, wal::DecodeStatus::kRecord);
  EXPECT_EQ(promote.record.type, wal::RecordType::kPromote);
  EXPECT_EQ(promote.record.name, "gcd-job");
  EXPECT_EQ(promote.record.version, 42u);
  EXPECT_EQ(promote.consumed, rest.size()) << "trailing bytes after the last record";
}

TEST(WalRecord, NanPayloadBitsSurvive) {
  // A NaN with a deliberate payload: the WAL must not canonicalize it.
  const double weird_nan = std::bit_cast<double>(0x7FF800000000BEEFULL);
  std::string bytes;
  wal::append_observe(bytes, "w", 0, {weird_nan});
  const wal::Decoded d = wal::decode_record(bytes);
  ASSERT_EQ(d.status, wal::DecodeStatus::kRecord);
  ASSERT_EQ(d.record.values.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.record.values[0]), 0x7FF800000000BEEFULL);
}

TEST(WalRecord, EveryPrefixIsATornTailNotAnError) {
  std::string bytes;
  wal::append_observe(bytes, "wiki", 7, {1.5, 2.5});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const wal::Decoded d = wal::decode_record(std::string_view(bytes).substr(0, cut));
    EXPECT_EQ(d.status, wal::DecodeStatus::kNeedMore)
        << "a " << cut << "-byte prefix is what a crash leaves — never corrupt";
  }
}

TEST(WalRecord, AnyFlippedByteIsDetected) {
  std::string bytes;
  wal::append_observe(bytes, "wiki", 7, {1.5, 2.5});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    const wal::Decoded d = wal::decode_record(corrupt);
    EXPECT_NE(d.status, wal::DecodeStatus::kRecord)
        << "byte " << i << " flipped yet the record decoded";
  }
}

TEST(WalRecord, HostileHeaderFieldsAreBadNotAllocations) {
  // Unknown type.
  std::string unknown;
  unknown.push_back(static_cast<char>(wal::kRecordMagic));
  unknown.push_back(static_cast<char>(9));
  unknown.append(4, '\0');
  EXPECT_EQ(wal::decode_record(unknown).status, wal::DecodeStatus::kBad);
  // A 2 GiB length claim must be rejected immediately, not buffered for.
  std::string oversized;
  oversized.push_back(static_cast<char>(wal::kRecordMagic));
  oversized.push_back(static_cast<char>(wal::RecordType::kObserve));
  for (const char c : {'\xff', '\xff', '\xff', '\x7f'}) oversized.push_back(c);
  const wal::Decoded d = wal::decode_record(oversized);
  EXPECT_EQ(d.status, wal::DecodeStatus::kBad);
  EXPECT_FALSE(d.error.empty());
  // Not a record stream at all.
  EXPECT_EQ(wal::decode_record("PREDICT wiki 4\n").status, wal::DecodeStatus::kBad);
}

TEST(WalRecord, ReplayBufferTruncatesAtFirstBadCrc) {
  std::string clean;
  wal::append_register(clean, "a");
  wal::append_observe(clean, "a", 0, {1.0, 2.0});
  wal::append_promote(clean, "a", 3);
  std::size_t seen = 0;
  const wal::BufferReplay all =
      wal::replay_buffer(clean, [&](const wal::Record&) { ++seen; });
  EXPECT_EQ(all.records, 3u);
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(all.consumed, clean.size());
  EXPECT_FALSE(all.torn);
  EXPECT_FALSE(all.bad);

  // Torn tail: the clean prefix replays, the partial record is cut.
  std::string torn = clean.substr(0, clean.size() - 3);
  const wal::BufferReplay cut = wal::replay_buffer(torn, [](const wal::Record&) {});
  EXPECT_EQ(cut.records, 2u);
  EXPECT_TRUE(cut.torn);
  EXPECT_FALSE(cut.bad);

  // Corruption in the middle record stops replay there — records after the
  // hole cannot be ordered safely.
  std::string bad = clean;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0xFF);
  const wal::BufferReplay stopped = wal::replay_buffer(bad, [](const wal::Record&) {});
  EXPECT_TRUE(stopped.bad);
  EXPECT_LT(stopped.records, 3u);
  EXPECT_FALSE(stopped.error.empty());
}

// ---------------------------------------------------------------------------
// WalJournal: segments on disk.

wal::WalConfig tiny_segments(const std::string& dir) {
  wal::WalConfig config;
  config.dir = dir;
  config.fsync = wal::Fsync::kNever;  // tests care about bytes, not power loss
  config.segment_bytes = 64;          // force rotation every record or two
  return config;
}

TEST(WalJournal, AppendRotateReplayRoundTrip) {
  testutil::ScopedTempDir tmp("wal_journal");
  const wal::WalConfig config = tiny_segments(tmp.path().string());
  wal::Journal journal(tmp.file("shard-0"), config);
  for (int i = 0; i < 5; ++i) {
    std::string rec;
    wal::append_observe(rec, "wiki", static_cast<std::uint64_t>(i), {100.0 + i});
    journal.append(rec);
  }
  EXPECT_GT(journal.segment_count(), 1u) << "64-byte segments must have rotated";

  std::vector<std::uint64_t> steps;
  const wal::ReplayStats stats = journal.replay(
      0, [&](const wal::Record& rec) { steps.push_back(rec.first_step); });
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.torn_segments, 0u);
  EXPECT_EQ(stats.quarantined_segments, 0u);
  ASSERT_EQ(steps.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_EQ(steps[i], i) << "replay order must match append order";
}

TEST(WalJournal, RestartStartsAFreshSegment) {
  testutil::ScopedTempDir tmp("wal_fresh");
  const wal::WalConfig config = tiny_segments(tmp.path().string());
  std::uint64_t first_seq = 0;
  {
    wal::Journal journal(tmp.file("shard-0"), config);
    std::string rec;
    wal::append_register(rec, "wiki");
    journal.append(rec);
    first_seq = journal.active_seq();
  }
  // A pre-existing segment's tail may be torn; appending to it would bury
  // new records behind the truncation point.
  wal::Journal reopened(tmp.file("shard-0"), config);
  EXPECT_GT(reopened.active_seq(), first_seq);
  std::string rec;
  wal::append_register(rec, "gcd-job");
  reopened.append(rec);
  std::size_t records = 0;
  (void)reopened.replay(0, [&](const wal::Record&) { ++records; });
  EXPECT_EQ(records, 2u) << "both generations must replay";
}

TEST(WalJournal, TornTailKeepsCleanPrefix) {
  testutil::ScopedTempDir tmp("wal_torn");
  wal::WalConfig config = tiny_segments(tmp.path().string());
  config.segment_bytes = 1u << 20;  // keep everything in one segment
  const std::string dir = tmp.file("shard-0");
  std::string segment_path;
  {
    wal::Journal journal(dir, config);
    std::string rec;
    wal::append_observe(rec, "wiki", 0, {1.0, 2.0});
    journal.append(rec);
    segment_path = (fs::path(dir) / "wal-00000001.log").string();
  }
  // Simulate a crash mid-append: half a record at the tail.
  std::string partial;
  wal::append_observe(partial, "wiki", 2, {3.0, 4.0});
  std::ofstream(segment_path, std::ios::binary | std::ios::app)
      << partial.substr(0, partial.size() / 2);

  wal::Journal reopened(dir, config);
  std::size_t records = 0;
  const wal::ReplayStats stats = reopened.replay(0, [&](const wal::Record&) { ++records; });
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(stats.torn_segments, 1u);
  EXPECT_EQ(stats.quarantined_segments, 0u);
  EXPECT_TRUE(fs::exists(segment_path)) << "torn segments stay until compaction";
}

TEST(WalJournal, CorruptSegmentIsQuarantinedAndStopsReplay) {
  testutil::ScopedTempDir tmp("wal_quarantine");
  const wal::WalConfig config = tiny_segments(tmp.path().string());
  const std::string dir = tmp.file("shard-0");
  {
    wal::Journal journal(dir, config);
    for (int i = 0; i < 4; ++i) {
      std::string rec;
      wal::append_observe(rec, "wiki", static_cast<std::uint64_t>(i), {100.0 + i});
      journal.append(rec);
    }
  }
  // Bit-rot the first segment inside its FIRST record, so nothing in the
  // file (or any later segment) may be applied.
  const std::string first = (fs::path(dir) / "wal-00000001.log").string();
  std::string bytes = read_file(first);
  ASSERT_GT(bytes.size(), 10u);
  bytes[10] = static_cast<char>(bytes[10] ^ 0xFF);
  write_file(first, bytes);

  wal::Journal reopened(dir, config);
  std::size_t records = 0;
  const wal::ReplayStats stats = reopened.replay(0, [&](const wal::Record&) { ++records; });
  EXPECT_EQ(stats.quarantined_segments, 1u);
  EXPECT_EQ(records, 0u)
      << "records after a quarantined segment cannot be ordered, so replay stops";
  EXPECT_FALSE(fs::exists(first));
  EXPECT_TRUE(fs::exists(first + ".quarantine")) << "the evidence is kept for inspection";
}

TEST(WalJournal, RotateBoundaryCompactsOnlyBelow) {
  testutil::ScopedTempDir tmp("wal_compact");
  wal::WalConfig config = tiny_segments(tmp.path().string());
  config.segment_bytes = 1u << 20;
  wal::Journal journal(tmp.file("shard-0"), config);
  std::string rec;
  wal::append_register(rec, "wiki");
  journal.append(rec);
  const std::uint64_t boundary = journal.rotate();
  journal.append(rec);  // lands in the post-boundary segment
  EXPECT_EQ(journal.segment_count(), 2u);
  journal.remove_segments_below(boundary);
  EXPECT_EQ(journal.segment_count(), 1u);
  std::size_t records = 0;
  (void)journal.replay(boundary, [&](const wal::Record&) { ++records; });
  EXPECT_EQ(records, 1u) << "the post-boundary record must survive compaction";
}

// ---------------------------------------------------------------------------
// WalSnapshot: the manifest format.

wal::Manifest sample_manifest() {
  wal::Manifest manifest;
  manifest.shard_wal_seq = {3, 1};
  wal::TenantState t;
  t.name = "az-vm-2017";
  t.version = 4;
  t.observations = 100;
  t.retrains = 3;
  t.baseline_mape = 6.74041e-2;
  t.last_fit_step = 96;
  t.has_model = true;
  t.history = kExactValues;
  manifest.tenants.push_back(t);
  wal::TenantState cold;
  cold.name = "wiki";
  cold.observations = 2;
  cold.history = {1.0, 2.0};
  manifest.tenants.push_back(cold);
  return manifest;
}

TEST(WalSnapshot, RenderParseRoundTripIsBitExact) {
  const wal::Manifest manifest = sample_manifest();
  const wal::Manifest parsed = wal::parse_manifest(wal::render_manifest(manifest));
  EXPECT_EQ(parsed.shard_wal_seq, manifest.shard_wal_seq);
  ASSERT_EQ(parsed.tenants.size(), manifest.tenants.size());
  for (std::size_t i = 0; i < manifest.tenants.size(); ++i) {
    const wal::TenantState& a = manifest.tenants[i];
    const wal::TenantState& b = parsed.tenants[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.version, a.version);
    EXPECT_EQ(b.observations, a.observations);
    EXPECT_EQ(b.retrains, a.retrains);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(b.baseline_mape),
              std::bit_cast<std::uint64_t>(a.baseline_mape));
    EXPECT_EQ(b.last_fit_step, a.last_fit_step);
    EXPECT_EQ(b.has_model, a.has_model);
    ASSERT_EQ(b.history.size(), a.history.size());
    for (std::size_t k = 0; k < a.history.size(); ++k)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(b.history[k]),
                std::bit_cast<std::uint64_t>(a.history[k]))
          << "history[" << k << "] of " << a.name << " changed bits";
  }
}

TEST(WalSnapshot, TamperedManifestIsRejected) {
  std::string text = wal::render_manifest(sample_manifest());
  EXPECT_THROW((void)wal::parse_manifest(text.substr(0, text.size() / 2)),
               std::runtime_error);
  const std::size_t at = text.find("observations 100");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 16, "observations 999");
  EXPECT_THROW((void)wal::parse_manifest(text), std::runtime_error)
      << "edited body with a stale CRC must not parse";
}

TEST(WalSnapshot, DuplicateTenantIsRejected) {
  // write_snapshot captures each shard's registry snapshot once per tenant,
  // so a repeated name can only be corruption or a hand edit — replaying it
  // would apply one tenant's history twice. Re-render (not byte-patch) so
  // the CRC is valid and the rejection is provably the semantic check.
  wal::Manifest manifest = sample_manifest();
  manifest.tenants.push_back(manifest.tenants.front());
  EXPECT_THROW((void)wal::parse_manifest(wal::render_manifest(manifest)),
               std::runtime_error);
}

TEST(WalSnapshot, CorruptFileFallsBackToPrev) {
  log::set_level(log::Level::kError);
  testutil::ScopedTempDir tmp("wal_manifest");
  const std::string path = tmp.file("snapshot.manifest");
  wal::Manifest first = sample_manifest();
  wal::save_manifest(first, path);
  wal::Manifest second = first;
  second.tenants[0].observations = 150;
  second.tenants[0].history.push_back(5.5);
  wal::save_manifest(second, path);
  ASSERT_TRUE(fs::exists(path + ".prev")) << "the durable write must keep a fallback";

  // Clean load sees the newest snapshot.
  std::string loaded_from;
  EXPECT_EQ(wal::load_manifest(path, &loaded_from).tenants[0].observations, 150u);
  EXPECT_EQ(loaded_from, path);

  // Corrupt the primary: quarantine + fall back to `.prev`.
  write_file(path, "loaddynamics-snapshot garbage\n");
  const wal::Manifest recovered = wal::load_manifest(path, &loaded_from);
  EXPECT_EQ(recovered.tenants[0].observations, 100u);
  EXPECT_EQ(loaded_from, path + ".prev");
  EXPECT_TRUE(fs::exists(path + ".quarantine"));
  log::set_level(log::Level::kInfo);
}

// ---------------------------------------------------------------------------
// WalService: PredictionService recovery end to end.

class WalServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { log::set_level(log::Level::kError); }
  void TearDown() override {
    fault::Injector::instance().reset();
    log::set_level(log::Level::kInfo);
  }

  serving::ServiceConfig durable_config(const testutil::ScopedTempDir& tmp,
                                        std::size_t shards = 1) {
    serving::ServiceConfig cfg = quick_service(shards);
    cfg.wal.dir = tmp.file("wal");
    cfg.wal.fsync = wal::Fsync::kNever;  // process exit, not power loss
    cfg.checkpoint_dir = tmp.file("ckpt");
    return cfg;
  }
};

TEST_F(WalServiceTest, RecoversBitIdenticalFromWalTailAlone) {
  testutil::ScopedTempDir tmp("wal_service");
  const std::vector<double> series = testutil::seasonal_series(96);
  std::vector<double> expected;
  {
    serving::PredictionService service(durable_config(tmp));
    service.publish("web", *quick_model(series));
    service.observe_many("web", series);
    expected = service.predict("web", 4);
    // No snapshot, no drain: the journal (and the model checkpoint) is all
    // that survives this scope.
  }
  serving::PredictionService reborn(durable_config(tmp));
  const serving::RecoveryStats stats = reborn.recover();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_GE(stats.replayed_records, 2u);  // register + at least one observe
  EXPECT_EQ(stats.replayed_values, series.size());
  EXPECT_EQ(stats.quarantined_segments, 0u);
  EXPECT_EQ(reborn.stats("web").observations, series.size());

  const std::vector<double> after = reborn.predict("web", 4);
  ASSERT_EQ(after.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after[i]),
              std::bit_cast<std::uint64_t>(expected[i]))
        << "forecast[" << i << "] differs after recovery";
}

TEST_F(WalServiceTest, SnapshotCompactsAndRecoversWithoutReplay) {
  testutil::ScopedTempDir tmp("wal_snapshot_svc");
  const serving::ServiceConfig cfg = durable_config(tmp);
  const std::vector<double> series = testutil::seasonal_series(96);
  std::vector<double> expected;
  {
    serving::PredictionService service(cfg);
    service.publish("web", *quick_model(series));
    service.observe_many("web", series);
    expected = service.predict("web", 4);
    const std::string path = service.write_snapshot();
    EXPECT_TRUE(fs::exists(path));
  }
  // Compaction deleted the pre-snapshot segments; only empty post-boundary
  // segments may remain.
  serving::PredictionService reborn(cfg);
  const serving::RecoveryStats stats = reborn.recover();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.tenants, 1u);
  EXPECT_EQ(stats.models, 1u);
  EXPECT_EQ(stats.replayed_records, 0u) << "everything was compacted into the manifest";
  EXPECT_EQ(reborn.stats("web").observations, series.size());
  const std::vector<double> after = reborn.predict("web", 4);
  ASSERT_EQ(after.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after[i]),
              std::bit_cast<std::uint64_t>(expected[i]));
}

TEST_F(WalServiceTest, ReplayIsIdempotentAcrossSnapshotOverlap) {
  // A crash between "manifest durable" and "segments deleted" leaves records
  // the snapshot already covers. Hand-build exactly that wreckage.
  testutil::ScopedTempDir tmp("wal_idempotent");
  serving::ServiceConfig cfg = quick_service(1);
  cfg.wal.dir = tmp.file("wal");
  cfg.wal.fsync = wal::Fsync::kNever;
  {
    wal::Journal journal(tmp.file("wal/shard-0"), cfg.wal);
    std::string rec;
    wal::append_register(rec, "web");
    journal.append(rec);
    rec.clear();
    wal::append_observe(rec, "web", 0, {1.0, 2.0, 3.0});
    journal.append(rec);
    rec.clear();
    wal::append_observe(rec, "web", 0, {1.0, 2.0, 3.0});  // duplicate batch
    journal.append(rec);
    rec.clear();
    wal::append_observe(rec, "web", 3, {4.0});
    journal.append(rec);
  }
  serving::PredictionService service(cfg);
  const serving::RecoveryStats stats = service.recover();
  EXPECT_EQ(stats.replayed_records, 4u);
  EXPECT_EQ(stats.skipped_records, 1u) << "the duplicate batch must be skipped whole";
  EXPECT_EQ(stats.replayed_values, 4u);
  const serving::WorkloadStats web = service.stats("web");
  EXPECT_EQ(web.observations, 4u);
  EXPECT_EQ(web.history_size, 4u) << "duplicates must not double the history";
}

TEST_F(WalServiceTest, WalAppendFaultDegradesDurabilityNotAvailability) {
  testutil::ScopedTempDir tmp("wal_fault");
  serving::PredictionService service(durable_config(tmp));
  const testutil::CounterDelta failures("ld_wal_append_failures_total");
  fault::Injector::instance().configure("wal.append:n=1", /*seed=*/7);
  service.observe("web", 100.0);  // must not throw
  EXPECT_EQ(failures.delta(), 1u)
      << "the armed fault fails exactly one append (the registration record)";
  EXPECT_EQ(service.stats("web").observations, 1u)
      << "the in-memory mutation must proceed despite the journal failure";
}

TEST_F(WalServiceTest, SnapshotWriteFaultKeepsSegments) {
  testutil::ScopedTempDir tmp("wal_snapfault");
  const serving::ServiceConfig cfg = durable_config(tmp);
  serving::PredictionService service(cfg);
  service.observe_many("web", std::vector<double>{1.0, 2.0, 3.0});
  fault::Injector::instance().configure("snapshot.write:n=1", /*seed=*/7);
  EXPECT_THROW((void)service.write_snapshot(), std::runtime_error);
  // No record may be deleted before a manifest covering it is durable: the
  // journaled batch must still replay in a fresh process.
  fault::Injector::instance().reset();
  serving::PredictionService reborn(cfg);
  const serving::RecoveryStats stats = reborn.recover();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed_values, 3u) << "the failed snapshot lost journaled records";
  EXPECT_EQ(reborn.stats("web").observations, 3u);
}

TEST_F(WalServiceTest, ShardedRecoveryReplaysEveryTenant) {
  // Multi-shard: the parallel per-shard replay must restore every tenant
  // (this is the TSan-observed overlap — shard replays share the pool).
  testutil::ScopedTempDir tmp("wal_sharded");
  const serving::ServiceConfig cfg = durable_config(tmp, /*shards=*/4);
  const std::vector<std::string> names = {"wiki", "az-vm-2017", "gcd-job", "web"};
  const std::vector<double> series = testutil::seasonal_series(48);
  {
    serving::PredictionService service(cfg);
    for (const std::string& name : names) service.observe_many(name, series);
  }
  serving::PredictionService reborn(cfg);
  const serving::RecoveryStats stats = reborn.recover();
  EXPECT_EQ(stats.replayed_values, names.size() * series.size());
  for (const std::string& name : names)
    EXPECT_EQ(reborn.stats(name).observations, series.size()) << name;
}

TEST_F(WalServiceTest, ProtocolExposesSnapshotAndRecoveryCounters) {
  testutil::ScopedTempDir tmp("wal_protocol");
  serving::PredictionService service(durable_config(tmp));
  service.observe_many("web", std::vector<double>{1.0, 2.0});
  serving::LineProtocol protocol(service);

  std::ostringstream snap;
  ASSERT_TRUE(protocol.handle("SNAPSHOT", snap));
  EXPECT_EQ(snap.str().rfind("OK snapshot ", 0), 0u) << snap.str();

  std::ostringstream stats;
  ASSERT_TRUE(protocol.handle("STATS", stats));
  std::string last;
  std::istringstream lines(stats.str());
  for (std::string line; std::getline(lines, line);) last = line;
  // The fleet summary keeps its historical prefix and appends the WAL fields.
  EXPECT_EQ(last.rfind("OK stats ", 0), 0u) << last;
  for (const char* key : {" wal_recovered=", " wal_replayed=", " wal_torn=",
                          " wal_quarantined="})
    EXPECT_NE(last.find(key), std::string::npos) << "missing " << key << " in " << last;

  // Without a WAL, SNAPSHOT is an error, and STATS has no WAL fields.
  serving::PredictionService plain(quick_service());
  plain.observe("web", 1.0);
  serving::LineProtocol plain_protocol(plain);
  std::ostringstream err;
  ASSERT_TRUE(plain_protocol.handle("SNAPSHOT", err));
  EXPECT_EQ(err.str().rfind("ERR", 0), 0u) << err.str();
  std::ostringstream plain_stats;
  ASSERT_TRUE(plain_protocol.handle("STATS", plain_stats));
  EXPECT_EQ(plain_stats.str().find("wal_recovered="), std::string::npos);
}

// ---------------------------------------------------------------------------
// WalCrash: a real SIGKILL mid-traffic, recovered in this process.

#ifndef _WIN32

/// Child half: runs only when re-exec'd by KilledProcessRecoversBitIdentical
/// with LD_WAL_CRASH_DIR set. Ingests durably, then dies without any
/// destructor or flush — the closest a test can get to yanking the cord.
TEST(WalCrashChild, IngestThenSigkillSelf) {
  const char* dir = std::getenv("LD_WAL_CRASH_DIR");
  if (dir == nullptr) GTEST_SKIP() << "parent-driven child test";
  serving::ServiceConfig cfg = quick_service(1);
  cfg.wal.dir = std::string(dir) + "/wal";
  cfg.wal.fsync = wal::Fsync::kAlways;  // survive SIGKILL, not just exit
  cfg.checkpoint_dir = std::string(dir) + "/ckpt";
  serving::PredictionService service(cfg);
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  service.observe_many("web", std::vector<double>{150.0, 151.5, 149.25});
  (void)service.predict("web", 4);
  (void)std::raise(SIGKILL);  // no flush, no snapshot, no destructors
  FAIL() << "SIGKILL did not kill the child";
}

TEST(WalCrash, KilledProcessRecoversBitIdentical) {
  testutil::ScopedTempDir tmp("wal_crash");
  const std::vector<double> series = testutil::seasonal_series(96);
  const std::vector<double> tail = {150.0, 151.5, 149.25};

  // Reference: the same traffic in-process, no crash, no WAL.
  std::vector<double> expected;
  {
    serving::PredictionService reference(quick_service(1));
    reference.publish("web", *quick_model(series));
    reference.observe_many("web", series);
    reference.observe_many("web", tail);
    expected = reference.predict("web", 4);
  }

  // Re-exec this binary as the crash child and let it SIGKILL itself.
  ::setenv("LD_WAL_CRASH_DIR", tmp.path().string().c_str(), 1);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    ::execl("/proc/self/exe", "wal_test",
            "--gtest_filter=WalCrashChild.IngestThenSigkillSelf", nullptr);
    ::_exit(127);  // exec failed
  }
  ::unsetenv("LD_WAL_CRASH_DIR");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing: " << status;
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Recover the wreckage: the journal tail plus the model checkpoint must
  // reproduce the pre-crash forecast bit for bit.
  serving::ServiceConfig cfg = quick_service(1);
  cfg.wal.dir = tmp.file("wal");
  cfg.wal.fsync = wal::Fsync::kAlways;
  cfg.checkpoint_dir = tmp.file("ckpt");
  serving::PredictionService reborn(cfg);
  const serving::RecoveryStats stats = reborn.recover();
  EXPECT_EQ(stats.replayed_values, series.size() + tail.size());
  EXPECT_EQ(stats.quarantined_segments, 0u);
  EXPECT_EQ(reborn.stats("web").observations, series.size() + tail.size());
  const std::vector<double> after = reborn.predict("web", 4);
  ASSERT_EQ(after.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after[i]),
              std::bit_cast<std::uint64_t>(expected[i]))
        << "forecast[" << i << "] differs after the kill -9 recovery";
}

#endif  // !_WIN32

}  // namespace
