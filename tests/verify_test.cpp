// Tests for the verification harness (DESIGN.md §11/§12): the golden-file
// framework, ULP helpers, and the differential kernel suite that enforces
// the documented agreement bounds — reference vs blocked, reference vs the
// AVX2/AVX-512 SIMD tiers (serial and ThreadPool-parallel), and the fused
// single-timestep inference path (fp64 and int8-quantized).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/loaddynamics.hpp"
#include "core/model.hpp"
#include "nn/network.hpp"
#include "serving/service.hpp"
#include "tensor/cpu_features.hpp"
#include "tensor/matrix.hpp"
#include "test_util.hpp"
#include "verify/golden.hpp"
#include "verify/ulp.hpp"

namespace {

using namespace ld;

// ---------------------------------------------------------------------------
// ULP distance

TEST(Ulp, IdenticalAndAdjacentValues) {
  EXPECT_EQ(verify::ulp_distance(1.5, 1.5), 0u);
  EXPECT_EQ(verify::ulp_distance(0.0, -0.0), 0u);
  const double up = std::nextafter(1.5, 2.0);
  EXPECT_EQ(verify::ulp_distance(1.5, up), 1u);
  EXPECT_EQ(verify::ulp_distance(up, 1.5), 1u);
}

TEST(Ulp, MeasuresThroughZeroAndFlagsNonFinite) {
  const double pos = std::nextafter(0.0, 1.0);
  const double neg = std::nextafter(0.0, -1.0);
  EXPECT_EQ(verify::ulp_distance(pos, neg), 2u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(verify::ulp_distance(nan, 1.0), ~0ULL);
  EXPECT_EQ(verify::ulp_distance(nan, nan), 0u);  // both-NaN counts as agreement
  EXPECT_EQ(verify::ulp_distance(inf, inf), 0u);
  EXPECT_EQ(verify::ulp_distance(inf, -inf), ~0ULL);
  EXPECT_EQ(verify::ulp_distance(inf, 1.0), ~0ULL);
}

TEST(Ulp, MaxOverSpansAndLengthMismatch) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b = a;
  EXPECT_EQ(verify::max_ulp_distance(a, b), 0u);
  b[1] = std::nextafter(b[1], 10.0);
  EXPECT_EQ(verify::max_ulp_distance(a, b), 1u);
  b.push_back(4.0);
  EXPECT_EQ(verify::max_ulp_distance(a, b), ~0ULL);
}

// ---------------------------------------------------------------------------
// Golden snapshot framework

TEST(Golden, ToleranceSemantics) {
  verify::Snapshot golden;
  golden.set("m.abs", 10.0, /*abs_tol=*/0.5);
  golden.set("m.rel", 100.0, /*abs_tol=*/0.0, /*rel_tol=*/0.05);

  verify::Snapshot within;
  within.set("m.abs", 10.4);
  within.set("m.rel", 104.9);
  EXPECT_TRUE(golden.check(within).empty());

  verify::Snapshot outside;
  outside.set("m.abs", 10.6);
  outside.set("m.rel", 106.0);
  const auto diffs = golden.check(outside);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].key, "m.abs");
  EXPECT_NE(diffs[0].message.find("10.6"), std::string::npos)
      << "diff must show the actual value: " << diffs[0].message;
}

TEST(Golden, StructuralDiffs) {
  verify::Snapshot golden;
  golden.set("kept", 1.0);
  golden.set("missing_in_actual", 2.0);
  golden.set_text("kind", "text_here");

  verify::Snapshot actual;
  actual.set("kept", 1.0);
  actual.set("kind", 3.0);       // kind mismatch: golden has text
  actual.set("new_field", 4.0);  // not in the golden file

  const auto diffs = golden.check(actual);
  ASSERT_EQ(diffs.size(), 3u);  // missing + kind mismatch + new field
  bool saw_missing = false, saw_new = false;
  for (const auto& d : diffs) {
    if (d.key == "missing_in_actual") saw_missing = true;
    if (d.key == "new_field") saw_new = true;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
}

TEST(Golden, JsonRoundTripIsCanonical) {
  verify::Snapshot snap;
  snap.set("pi", 3.141592653589793, 1e-12);
  snap.set("third", 1.0 / 3.0, 0.0, 1e-9);
  snap.set("huge", 1e300);
  snap.set("neg", -0.0);
  snap.set_text("label", "line1\nline2 \"quoted\"");

  const std::string json = snap.to_json();
  const verify::Snapshot reparsed = verify::Snapshot::from_json(json);
  EXPECT_EQ(reparsed.to_json(), json) << "to_json(from_json(x)) must be bit-identical";
  EXPECT_TRUE(snap.check(reparsed).empty());
  EXPECT_TRUE(reparsed.check(snap).empty());
}

TEST(Golden, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1e300, 2.2250738585072014e-308, -1.5,
                         123456789.123456789, 0.0}) {
    const std::string s = verify::format_double(v);
    double back = 0.0;
    ASSERT_EQ(std::sscanf(s.c_str(), "%lf", &back), 1) << s;
    EXPECT_EQ(back, v) << "'" << s << "' must parse back to the exact double";
  }
}

TEST(Golden, SaveLoadAndPerturbationFails) {
  testutil::ScopedTempDir dir("golden_saveload");
  verify::Snapshot snap;
  snap.set("mape", 12.5, 0.0, 0.05);
  snap.set_text("crc", "deadbeef");
  const std::string path = dir.file("gate.json");
  snap.save(path);

  const verify::Snapshot loaded = verify::Snapshot::load(path);
  EXPECT_TRUE(loaded.check(snap).empty());

  verify::Snapshot perturbed;
  perturbed.set("mape", 12.5 * 1.06);  // 6% off against a 5% band
  perturbed.set_text("crc", "deadbeef");
  EXPECT_EQ(loaded.check(perturbed).size(), 1u);
}

TEST(Golden, RejectsMalformedJsonWithPosition) {
  EXPECT_THROW((void)verify::Snapshot::from_json("{\"a\": {\"value\": }}"),
               std::runtime_error);
  EXPECT_THROW((void)verify::Snapshot::from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)verify::Snapshot::from_json(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Differential GEMM: reference scalar kernels vs production blocked kernels

// Positive operands on purpose: every dot product is a sum of positive terms,
// so no cancellation and the ULP bound measures real kernel divergence (FMA
// contraction / vectorization). With signed data a near-zero output can sit
// thousands of ULPs from an absolutely-tiny difference (see verify/ulp.hpp).
tensor::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  tensor::Matrix m(rows, cols);
  for (double& v : m.flat()) v = rng.uniform(0.5, 2.0);
  return m;
}

TEST(DifferentialGemm, BlockedMatchesReferenceWithinBound) {
  Rng rng(42);
  for (const auto [m, k, n] : {std::array<std::size_t, 3>{1, 1, 1},
                               {3, 5, 7},
                               {17, 33, 9},
                               {64, 64, 64},
                               {120, 70, 50}}) {
    const tensor::Matrix a = random_matrix(m, k, rng);
    const tensor::Matrix b = random_matrix(k, n, rng);

    tensor::Matrix blocked;
    {
      tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
      blocked = tensor::matmul(a, b);
    }
    tensor::Matrix reference;
    {
      tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
      reference = tensor::matmul(a, b);
    }
    EXPECT_LE(verify::max_ulp_distance(blocked.flat(), reference.flat()),
              verify::kGemmUlpBound)
        << "matmul " << m << "x" << k << "x" << n;
  }
}

TEST(DifferentialGemm, TransposedVariantsMatchReference) {
  Rng rng(7);
  const std::size_t m = 31, k = 45, n = 23;
  const tensor::Matrix a = random_matrix(k, m, rng);   // used as A^T * B
  const tensor::Matrix b = random_matrix(k, n, rng);
  const tensor::Matrix c = random_matrix(m, k, rng);   // used as C * D^T
  const tensor::Matrix d = random_matrix(n, k, rng);

  tensor::Matrix atb_blocked(m, n), atb_reference(m, n);
  tensor::Matrix abt_blocked(m, n), abt_reference(m, n);
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    tensor::matmul_at_b_into(a, b, atb_blocked);
    tensor::matmul_a_bt_into(c, d, abt_blocked);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    tensor::matmul_at_b_into(a, b, atb_reference);
    tensor::matmul_a_bt_into(c, d, abt_reference);
  }
  EXPECT_LE(verify::max_ulp_distance(atb_blocked.flat(), atb_reference.flat()),
            verify::kGemmUlpBound);
  EXPECT_LE(verify::max_ulp_distance(abt_blocked.flat(), abt_reference.flat()),
            verify::kGemmUlpBound);
}

TEST(DifferentialGemm, AccumulateVariantAgrees) {
  Rng rng(11);
  const tensor::Matrix a = random_matrix(19, 27, rng);
  const tensor::Matrix b = random_matrix(27, 13, rng);
  const tensor::Matrix seed = random_matrix(19, 13, rng);

  tensor::Matrix blocked = seed, reference = seed;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    tensor::matmul_into(a, b, blocked, /*accumulate=*/true);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    tensor::matmul_into(a, b, reference, /*accumulate=*/true);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked.flat(), reference.flat()),
            verify::kGemmUlpBound);
}

TEST(DifferentialGemm, KernelModeIsThreadLocal) {
  // Selecting the reference kernel on this thread must not leak into other
  // threads: a fresh thread still starts at the dispatched production tier
  // (default_kernel_mode() — LD_KERNEL/CPUID). (A ThreadPool::submit would
  // not prove this — it executes inline on the caller when the pool has no
  // workers.)
  Rng rng(3);
  const tensor::Matrix a = random_matrix(40, 40, rng);
  const tensor::Matrix b = random_matrix(40, 40, rng);
  tensor::Matrix dispatched;
  {
    tensor::ScopedKernelMode pin(tensor::default_kernel_mode());
    dispatched = tensor::matmul(a, b);
  }

  tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
  ASSERT_EQ(tensor::kernel_mode(), tensor::KernelMode::kReference);
  tensor::KernelMode seen = tensor::KernelMode::kReference;
  tensor::Matrix from_thread;
  std::thread worker([&] {
    seen = tensor::kernel_mode();
    from_thread = tensor::matmul(a, b);
  });
  worker.join();
  EXPECT_EQ(seen, tensor::default_kernel_mode())
      << "a fresh thread must default to the dispatched production tier";
  EXPECT_EQ(verify::max_ulp_distance(from_thread.flat(), dispatched.flat()), 0u)
      << "cross-thread result must be bit-identical to the dispatched tier";
}

// ---------------------------------------------------------------------------
// SIMD tiers (DESIGN.md §12): AVX2/AVX-512 micro-kernels, serial and
// ThreadPool-parallel, against the scalar reference. Skipped (not failed)
// when the host or build lacks the ISA — the LD_ENABLE_SIMD=OFF CI job
// exercises exactly that fallback.

std::vector<tensor::KernelMode> supported_simd_tiers() {
  std::vector<tensor::KernelMode> tiers;
  for (const tensor::KernelMode mode :
       {tensor::KernelMode::kAvx2, tensor::KernelMode::kAvx512})
    if (tensor::kernel_mode_supported(mode)) tiers.push_back(mode);
  return tiers;
}

TEST(DifferentialGemm, SimdTiersMatchReferenceWithinBound) {
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD kernel tier available on this host";
  Rng rng(42);
  // Shapes straddle the micro-tile geometry (MR=4/8, 8/16-wide panels) and
  // the small-size crossover: remainder rows, masked tail columns, and one
  // sub-crossover case that must delegate to the reference loop.
  for (const auto [m, k, n] : {std::array<std::size_t, 3>{1, 1, 1},
                               {3, 5, 7},
                               {8, 8, 8},
                               {17, 33, 9},
                               {64, 64, 64},
                               {120, 70, 50},
                               {65, 31, 97}}) {
    const tensor::Matrix a = random_matrix(m, k, rng);
    const tensor::Matrix b = random_matrix(k, n, rng);
    tensor::Matrix reference;
    {
      tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
      reference = tensor::matmul(a, b);
    }
    for (const tensor::KernelMode tier : tiers) {
      tensor::ScopedKernelMode mode(tier);
      const tensor::Matrix simd = tensor::matmul(a, b);
      EXPECT_LE(verify::max_ulp_distance(simd.flat(), reference.flat()),
                verify::kSimdGemmUlpBound)
          << tensor::kernel_mode_name(tier) << " matmul " << m << "x" << k << "x" << n;
    }
  }
}

TEST(DifferentialGemm, SimdTransposedAndAccumulateVariantsMatchReference) {
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD kernel tier available on this host";
  Rng rng(7);
  const std::size_t m = 31, k = 45, n = 23;
  const tensor::Matrix a = random_matrix(k, m, rng);  // used as A^T * B
  const tensor::Matrix b = random_matrix(k, n, rng);
  const tensor::Matrix c = random_matrix(m, k, rng);  // used as C * D^T
  const tensor::Matrix d = random_matrix(n, k, rng);
  const tensor::Matrix e = random_matrix(k, n, rng);  // accumulate multiplicand
  const tensor::Matrix seed = random_matrix(m, n, rng);  // accumulate seed

  tensor::Matrix atb_ref(m, n), abt_ref(m, n);
  tensor::Matrix acc_ref = seed;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    tensor::matmul_at_b_into(a, b, atb_ref);
    tensor::matmul_a_bt_into(c, d, abt_ref);
    tensor::matmul_into(c, e, acc_ref, /*accumulate=*/true);
  }
  for (const tensor::KernelMode tier : tiers) {
    tensor::Matrix atb(m, n), abt(m, n);
    tensor::Matrix acc = seed;
    tensor::ScopedKernelMode mode(tier);
    tensor::matmul_at_b_into(a, b, atb);
    tensor::matmul_a_bt_into(c, d, abt);
    tensor::matmul_into(c, e, acc, /*accumulate=*/true);
    const std::string name = tensor::kernel_mode_name(tier);
    EXPECT_LE(verify::max_ulp_distance(atb.flat(), atb_ref.flat()),
              verify::kSimdGemmUlpBound)
        << name << " matmul_at_b";
    EXPECT_LE(verify::max_ulp_distance(abt.flat(), abt_ref.flat()),
              verify::kSimdGemmUlpBound)
        << name << " matmul_a_bt";
    EXPECT_LE(verify::max_ulp_distance(acc.flat(), acc_ref.flat()),
              verify::kSimdGemmUlpBound)
        << name << " matmul_into(accumulate)";
  }
}

TEST(ParallelGemm, BitIdenticalAcrossPoolSizes) {
  // The row-panel partitioning gives every C element exactly one owning
  // micro-tile with a single ascending-k accumulation pass, so a parallel
  // GEMM is bit-identical to the serial one — for any pool size. This is the
  // determinism contract DESIGN.md §12 documents; the TSan job runs this
  // same test for data races.
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD kernel tier available on this host";
  Rng rng(17);
  // Big enough to clear kParallelMinFlops (2^22): 180*160*170 ≈ 4.9M flops.
  const tensor::Matrix a = random_matrix(180, 160, rng);
  const tensor::Matrix b = random_matrix(160, 170, rng);

  tensor::Matrix reference;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = tensor::matmul(a, b);
  }

  const std::size_t original_size = ThreadPool::global().size();
  for (const tensor::KernelMode tier : tiers) {
    tensor::ScopedKernelMode mode(tier);
    ThreadPool::set_global_size(1);
    const tensor::Matrix serial = tensor::matmul(a, b);
    for (const std::size_t workers : {4u, 3u}) {
      ThreadPool::set_global_size(workers);
      const tensor::Matrix parallel = tensor::matmul(a, b);
      EXPECT_EQ(verify::max_ulp_distance(parallel.flat(), serial.flat()), 0u)
          << tensor::kernel_mode_name(tier) << " with " << workers << " workers";
    }
    EXPECT_LE(verify::max_ulp_distance(serial.flat(), reference.flat()),
              verify::kSimdGemmUlpBound)
        << tensor::kernel_mode_name(tier);
  }
  ThreadPool::set_global_size(original_size);
}

// ---------------------------------------------------------------------------
// Differential LSTM + serving predict

std::shared_ptr<core::TrainedModel> quick_model(const std::vector<double>& series) {
  core::Hyperparameters hp;
  hp.history_length = 8;
  hp.cell_size = 6;
  hp.num_layers = 2;
  hp.batch_size = 16;
  core::ModelTrainingConfig config;
  config.trainer.max_epochs = 5;
  const std::size_t split = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(
      std::span<const double>(series.data(), split),
      std::span<const double>(series.data() + split, series.size() - split), hp, config,
      99);
}

TEST(DifferentialLstm, ForwardPassWithinBound) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  double blocked = 0.0, reference = 0.0;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_next(series);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_next(series);
  }
  EXPECT_LE(verify::ulp_distance(blocked, reference), verify::kLstmUlpBound);
}

TEST(DifferentialLstm, WalkForwardSeriesWithinBound) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  std::vector<double> blocked, reference;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_series(series, 120);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_series(series, 120);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked, reference), verify::kLstmUlpBound);
}

TEST(DifferentialLstm, RecursiveHorizonWithinPredictBound) {
  // Recursive multi-step feeds rounding differences back into the input, so
  // this path gets the wider serving bound.
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  std::vector<double> blocked, reference;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_horizon(series, 12);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_horizon(series, 12);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked, reference), verify::kPredictUlpBound);
}

TEST(ServingDiff, LivePredictPassesDifferentialCheck) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  serving::ServiceConfig config;
  config.background_retrain = false;
  serving::PredictionService service(config);
  service.publish("diffcheck", *model);
  service.observe_many("diffcheck", series);

  const testutil::CounterDelta mismatches("ld_verify_diff_mismatch_total",
                                          {{"workload", "diffcheck"}});
  serving::set_verify_diff(true);
  const auto result = service.predict_detailed("diffcheck", 6);
  serving::set_verify_diff(false);

  EXPECT_EQ(result.level, fault::DegradationLevel::kLive);
  ASSERT_EQ(result.forecast.size(), 6u);
  EXPECT_EQ(mismatches.delta(), 0u)
      << "blocked and reference kernels diverged beyond kPredictUlpBound";
}

TEST(ServingDiff, FusedLivePredictPassesDifferentialCheck) {
  // Same differential check with a SIMD tier live: the service predict takes
  // the fused single-timestep path while the shadow recompute runs the
  // layered reference — so LD_VERIFY_DIFF exercises exactly the fused-vs-
  // layered comparison, against the wider kFusedPredictUlpBound.
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD kernel tier available on this host";
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  serving::ServiceConfig config;
  config.background_retrain = false;
  serving::PredictionService service(config);
  service.publish("fuseddiff", *model);
  service.observe_many("fuseddiff", series);

  for (const tensor::KernelMode tier : tiers) {
    const tensor::ScopedKernelMode mode(tier);
    const testutil::CounterDelta mismatches("ld_verify_diff_mismatch_total",
                                            {{"workload", "fuseddiff"}});
    serving::set_verify_diff(true);
    const auto result = service.predict_detailed("fuseddiff", 6);
    serving::set_verify_diff(false);

    EXPECT_EQ(result.level, fault::DegradationLevel::kLive);
    ASSERT_EQ(result.forecast.size(), 6u);
    EXPECT_EQ(mismatches.delta(), 0u)
        << tensor::kernel_mode_name(tier)
        << " fused predict diverged from the layered reference beyond "
           "kFusedPredictUlpBound";
  }
}

// ---------------------------------------------------------------------------
// Fused single-timestep inference (DESIGN.md §12): forward_one vs the
// layered forward, unit-level for both cell types and end-to-end through the
// trained predict path.

TEST(DifferentialFused, ForwardOneMatchesLayeredForwardBothCells) {
  // Unit-level, host-independent: forward_one is scalar code, so it runs
  // (and must agree) even when no SIMD GEMM tier exists. Untrained-network
  // outputs can sit near zero where ULP distances blow up, so this test uses
  // a relative tolerance instead (the regrouped accumulation agrees to
  // ~1e-13 relative in practice).
  nn::set_quantized_inference(false);
  for (const nn::CellType cell : {nn::CellType::kLstm, nn::CellType::kGru}) {
    nn::LstmNetworkConfig cfg;
    cfg.hidden_size = 16;
    cfg.num_layers = 2;
    cfg.cell = cell;
    nn::LstmNetwork net(cfg, 7);
    Rng rng(5);
    std::vector<double> window(24);
    for (double& v : window) v = rng.uniform(0.5, 2.0);
    tensor::Matrix x(1, window.size());
    for (std::size_t t = 0; t < window.size(); ++t) x(0, t) = window[t];

    double layered = 0.0;
    {
      // kReference keeps forward() on the layered path regardless of host.
      const tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
      layered = net.forward(x)[0];
    }
    const double fused = net.forward_one(window);
    EXPECT_NEAR(fused, layered, 1e-9 * std::max(1.0, std::abs(layered)))
        << nn::cell_type_name(cell);
  }
}

TEST(DifferentialFused, TrainedPredictWithinFusedBound) {
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD kernel tier available on this host";
  nn::set_quantized_inference(false);
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  double reference = 0.0;
  std::vector<double> horizon_ref;
  {
    const tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_next(series);
    horizon_ref = model->predict_horizon(series, 12);
  }
  for (const tensor::KernelMode tier : tiers) {
    const tensor::ScopedKernelMode mode(tier);
    const double fused = model->predict_next(series);
    const std::vector<double> horizon = model->predict_horizon(series, 12);
    const std::string name = tensor::kernel_mode_name(tier);
    EXPECT_LE(verify::ulp_distance(fused, reference), verify::kFusedPredictUlpBound)
        << name << " predict_next";
    EXPECT_LE(verify::max_ulp_distance(horizon, horizon_ref),
              verify::kFusedPredictUlpBound)
        << name << " predict_horizon";
  }
}

// ---------------------------------------------------------------------------
// Quantization guardrail (ISSUE satellite): int8 row-quantized inference is
// a deliberate approximation, so it is bounded in model-quality units — the
// fig9-style walk-forward test MAPE may exceed the fp64 MAPE by at most
// verify::kQuantMapeTolerancePp percentage points.

TEST(QuantizedInference, WalkForwardMapeWithinGuardrail) {
  const auto tiers = supported_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "quantized path needs the fused (SIMD-tier) predict";
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);
  const std::size_t test_start = 120;

  const tensor::ScopedKernelMode mode(tiers.back());
  const auto walk_forward = [&](bool quantized) {
    nn::set_quantized_inference(quantized);
    std::vector<double> preds;
    preds.reserve(series.size() - test_start);
    for (std::size_t i = test_start; i < series.size(); ++i)
      preds.push_back(model->predict_next({series.data(), i}));
    return preds;
  };
  const std::vector<double> fp64_preds = walk_forward(false);
  const std::vector<double> int8_preds = walk_forward(true);
  nn::set_quantized_inference(false);

  const std::span<const double> actual(series.data() + test_start,
                                       series.size() - test_start);
  const double fp64_mape = metrics::mape(actual, fp64_preds);
  const double int8_mape = metrics::mape(actual, int8_preds);
  EXPECT_NE(fp64_preds, int8_preds)
      << "quantized inference produced bit-identical forecasts — the int8 "
         "path did not engage";
  EXPECT_LE(std::abs(int8_mape - fp64_mape), verify::kQuantMapeTolerancePp)
      << "fp64 MAPE " << fp64_mape << "% vs int8 MAPE " << int8_mape << "%";
}

// ---------------------------------------------------------------------------
// BO trajectories: the batched (constant-liar) search must retrace the
// serial search exactly — zero ULP, not merely "close".

TEST(DifferentialBo, BatchedTrajectoryMatchesSerialExactly) {
  const std::vector<double> series = testutil::seasonal_series(220, 100.0, 15.0, 24.0, 9);
  const std::span<const double> train(series.data(), 160);
  const std::span<const double> validation(series.data() + 160, 60);

  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.max_iterations = 4;
  cfg.initial_random = 2;
  cfg.training.trainer.max_epochs = 3;
  cfg.training.max_train_windows = 400;
  cfg.seed = 31;

  cfg.batch_size = 1;
  const core::FitResult serial = core::LoadDynamics(cfg).fit(train, validation);
  cfg.batch_size = 4;
  const core::FitResult batched = core::LoadDynamics(cfg).fit(train, validation);

  EXPECT_EQ(verify::max_ulp_distance(serial.incumbent_trace(), batched.incumbent_trace()),
            0u);
  EXPECT_EQ(serial.best_record().hyperparameters, batched.best_record().hyperparameters);
}

// ---------------------------------------------------------------------------
// Metrics registry isolation (test_util satellite)

TEST(MetricsReset, RetiredCountersStopBeingScrapedButStayValid) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& before = reg.counter("ld_test_reset_total");
  before.inc(5);
  EXPECT_EQ(testutil::counter_value("ld_test_reset_total"), 5u);

  testutil::reset_metrics();
  // A cached reference survives the reset (graveyard semantics)...
  before.inc();  // must not crash
  // ...but the registry starts over: a re-resolve sees a fresh instrument.
  EXPECT_EQ(testutil::counter_value("ld_test_reset_total"), 0u);
  EXPECT_EQ(reg.prometheus_text().find("ld_test_reset_total 6"), std::string::npos);
}

TEST(MetricsReset, CounterDeltaIgnoresPriorState) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("ld_test_delta_total").inc(17);
  const testutil::CounterDelta delta("ld_test_delta_total");
  EXPECT_EQ(delta.delta(), 0u);
  reg.counter("ld_test_delta_total").inc(3);
  EXPECT_EQ(delta.delta(), 3u);
}

}  // namespace
