// Tests for the verification harness (DESIGN.md §11): the golden-file
// framework, ULP helpers, and the differential kernel suite that enforces
// the documented reference-vs-blocked agreement bounds.
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/loaddynamics.hpp"
#include "core/model.hpp"
#include "serving/service.hpp"
#include "tensor/matrix.hpp"
#include "test_util.hpp"
#include "verify/golden.hpp"
#include "verify/ulp.hpp"

namespace {

using namespace ld;

// ---------------------------------------------------------------------------
// ULP distance

TEST(Ulp, IdenticalAndAdjacentValues) {
  EXPECT_EQ(verify::ulp_distance(1.5, 1.5), 0u);
  EXPECT_EQ(verify::ulp_distance(0.0, -0.0), 0u);
  const double up = std::nextafter(1.5, 2.0);
  EXPECT_EQ(verify::ulp_distance(1.5, up), 1u);
  EXPECT_EQ(verify::ulp_distance(up, 1.5), 1u);
}

TEST(Ulp, MeasuresThroughZeroAndFlagsNonFinite) {
  const double pos = std::nextafter(0.0, 1.0);
  const double neg = std::nextafter(0.0, -1.0);
  EXPECT_EQ(verify::ulp_distance(pos, neg), 2u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(verify::ulp_distance(nan, 1.0), ~0ULL);
  EXPECT_EQ(verify::ulp_distance(nan, nan), 0u);  // both-NaN counts as agreement
  EXPECT_EQ(verify::ulp_distance(inf, inf), 0u);
  EXPECT_EQ(verify::ulp_distance(inf, -inf), ~0ULL);
  EXPECT_EQ(verify::ulp_distance(inf, 1.0), ~0ULL);
}

TEST(Ulp, MaxOverSpansAndLengthMismatch) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b = a;
  EXPECT_EQ(verify::max_ulp_distance(a, b), 0u);
  b[1] = std::nextafter(b[1], 10.0);
  EXPECT_EQ(verify::max_ulp_distance(a, b), 1u);
  b.push_back(4.0);
  EXPECT_EQ(verify::max_ulp_distance(a, b), ~0ULL);
}

// ---------------------------------------------------------------------------
// Golden snapshot framework

TEST(Golden, ToleranceSemantics) {
  verify::Snapshot golden;
  golden.set("m.abs", 10.0, /*abs_tol=*/0.5);
  golden.set("m.rel", 100.0, /*abs_tol=*/0.0, /*rel_tol=*/0.05);

  verify::Snapshot within;
  within.set("m.abs", 10.4);
  within.set("m.rel", 104.9);
  EXPECT_TRUE(golden.check(within).empty());

  verify::Snapshot outside;
  outside.set("m.abs", 10.6);
  outside.set("m.rel", 106.0);
  const auto diffs = golden.check(outside);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].key, "m.abs");
  EXPECT_NE(diffs[0].message.find("10.6"), std::string::npos)
      << "diff must show the actual value: " << diffs[0].message;
}

TEST(Golden, StructuralDiffs) {
  verify::Snapshot golden;
  golden.set("kept", 1.0);
  golden.set("missing_in_actual", 2.0);
  golden.set_text("kind", "text_here");

  verify::Snapshot actual;
  actual.set("kept", 1.0);
  actual.set("kind", 3.0);       // kind mismatch: golden has text
  actual.set("new_field", 4.0);  // not in the golden file

  const auto diffs = golden.check(actual);
  ASSERT_EQ(diffs.size(), 3u);  // missing + kind mismatch + new field
  bool saw_missing = false, saw_new = false;
  for (const auto& d : diffs) {
    if (d.key == "missing_in_actual") saw_missing = true;
    if (d.key == "new_field") saw_new = true;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
}

TEST(Golden, JsonRoundTripIsCanonical) {
  verify::Snapshot snap;
  snap.set("pi", 3.141592653589793, 1e-12);
  snap.set("third", 1.0 / 3.0, 0.0, 1e-9);
  snap.set("huge", 1e300);
  snap.set("neg", -0.0);
  snap.set_text("label", "line1\nline2 \"quoted\"");

  const std::string json = snap.to_json();
  const verify::Snapshot reparsed = verify::Snapshot::from_json(json);
  EXPECT_EQ(reparsed.to_json(), json) << "to_json(from_json(x)) must be bit-identical";
  EXPECT_TRUE(snap.check(reparsed).empty());
  EXPECT_TRUE(reparsed.check(snap).empty());
}

TEST(Golden, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 1e300, 2.2250738585072014e-308, -1.5,
                         123456789.123456789, 0.0}) {
    const std::string s = verify::format_double(v);
    double back = 0.0;
    ASSERT_EQ(std::sscanf(s.c_str(), "%lf", &back), 1) << s;
    EXPECT_EQ(back, v) << "'" << s << "' must parse back to the exact double";
  }
}

TEST(Golden, SaveLoadAndPerturbationFails) {
  testutil::ScopedTempDir dir("golden_saveload");
  verify::Snapshot snap;
  snap.set("mape", 12.5, 0.0, 0.05);
  snap.set_text("crc", "deadbeef");
  const std::string path = dir.file("gate.json");
  snap.save(path);

  const verify::Snapshot loaded = verify::Snapshot::load(path);
  EXPECT_TRUE(loaded.check(snap).empty());

  verify::Snapshot perturbed;
  perturbed.set("mape", 12.5 * 1.06);  // 6% off against a 5% band
  perturbed.set_text("crc", "deadbeef");
  EXPECT_EQ(loaded.check(perturbed).size(), 1u);
}

TEST(Golden, RejectsMalformedJsonWithPosition) {
  EXPECT_THROW((void)verify::Snapshot::from_json("{\"a\": {\"value\": }}"),
               std::runtime_error);
  EXPECT_THROW((void)verify::Snapshot::from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)verify::Snapshot::from_json(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Differential GEMM: reference scalar kernels vs production blocked kernels

// Positive operands on purpose: every dot product is a sum of positive terms,
// so no cancellation and the ULP bound measures real kernel divergence (FMA
// contraction / vectorization). With signed data a near-zero output can sit
// thousands of ULPs from an absolutely-tiny difference (see verify/ulp.hpp).
tensor::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  tensor::Matrix m(rows, cols);
  for (double& v : m.flat()) v = rng.uniform(0.5, 2.0);
  return m;
}

TEST(DifferentialGemm, BlockedMatchesReferenceWithinBound) {
  Rng rng(42);
  for (const auto [m, k, n] : {std::array<std::size_t, 3>{1, 1, 1},
                               {3, 5, 7},
                               {17, 33, 9},
                               {64, 64, 64},
                               {120, 70, 50}}) {
    const tensor::Matrix a = random_matrix(m, k, rng);
    const tensor::Matrix b = random_matrix(k, n, rng);

    tensor::Matrix blocked;
    {
      tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
      blocked = tensor::matmul(a, b);
    }
    tensor::Matrix reference;
    {
      tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
      reference = tensor::matmul(a, b);
    }
    EXPECT_LE(verify::max_ulp_distance(blocked.flat(), reference.flat()),
              verify::kGemmUlpBound)
        << "matmul " << m << "x" << k << "x" << n;
  }
}

TEST(DifferentialGemm, TransposedVariantsMatchReference) {
  Rng rng(7);
  const std::size_t m = 31, k = 45, n = 23;
  const tensor::Matrix a = random_matrix(k, m, rng);   // used as A^T * B
  const tensor::Matrix b = random_matrix(k, n, rng);
  const tensor::Matrix c = random_matrix(m, k, rng);   // used as C * D^T
  const tensor::Matrix d = random_matrix(n, k, rng);

  tensor::Matrix atb_blocked(m, n), atb_reference(m, n);
  tensor::Matrix abt_blocked(m, n), abt_reference(m, n);
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    tensor::matmul_at_b_into(a, b, atb_blocked);
    tensor::matmul_a_bt_into(c, d, abt_blocked);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    tensor::matmul_at_b_into(a, b, atb_reference);
    tensor::matmul_a_bt_into(c, d, abt_reference);
  }
  EXPECT_LE(verify::max_ulp_distance(atb_blocked.flat(), atb_reference.flat()),
            verify::kGemmUlpBound);
  EXPECT_LE(verify::max_ulp_distance(abt_blocked.flat(), abt_reference.flat()),
            verify::kGemmUlpBound);
}

TEST(DifferentialGemm, AccumulateVariantAgrees) {
  Rng rng(11);
  const tensor::Matrix a = random_matrix(19, 27, rng);
  const tensor::Matrix b = random_matrix(27, 13, rng);
  const tensor::Matrix seed = random_matrix(19, 13, rng);

  tensor::Matrix blocked = seed, reference = seed;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    tensor::matmul_into(a, b, blocked, /*accumulate=*/true);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    tensor::matmul_into(a, b, reference, /*accumulate=*/true);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked.flat(), reference.flat()),
            verify::kGemmUlpBound);
}

TEST(DifferentialGemm, KernelModeIsThreadLocal) {
  // Selecting the reference kernel on this thread must not leak into other
  // threads: a fresh thread still runs the production blocked path. (A
  // ThreadPool::submit would not prove this — it executes inline on the
  // caller when the pool has no workers.)
  Rng rng(3);
  const tensor::Matrix a = random_matrix(40, 40, rng);
  const tensor::Matrix b = random_matrix(40, 40, rng);
  const tensor::Matrix blocked = tensor::matmul(a, b);

  tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
  ASSERT_EQ(tensor::kernel_mode(), tensor::KernelMode::kReference);
  tensor::KernelMode seen = tensor::KernelMode::kReference;
  tensor::Matrix from_thread;
  std::thread worker([&] {
    seen = tensor::kernel_mode();
    from_thread = tensor::matmul(a, b);
  });
  worker.join();
  EXPECT_EQ(seen, tensor::KernelMode::kBlocked)
      << "a fresh thread must default to the production blocked kernels";
  EXPECT_EQ(verify::max_ulp_distance(from_thread.flat(), blocked.flat()), 0u)
      << "cross-thread result must be bit-identical to the blocked path";
}

// ---------------------------------------------------------------------------
// Differential LSTM + serving predict

std::shared_ptr<core::TrainedModel> quick_model(const std::vector<double>& series) {
  core::Hyperparameters hp;
  hp.history_length = 8;
  hp.cell_size = 6;
  hp.num_layers = 2;
  hp.batch_size = 16;
  core::ModelTrainingConfig config;
  config.trainer.max_epochs = 5;
  const std::size_t split = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(
      std::span<const double>(series.data(), split),
      std::span<const double>(series.data() + split, series.size() - split), hp, config,
      99);
}

TEST(DifferentialLstm, ForwardPassWithinBound) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  double blocked = 0.0, reference = 0.0;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_next(series);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_next(series);
  }
  EXPECT_LE(verify::ulp_distance(blocked, reference), verify::kLstmUlpBound);
}

TEST(DifferentialLstm, WalkForwardSeriesWithinBound) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  std::vector<double> blocked, reference;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_series(series, 120);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_series(series, 120);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked, reference), verify::kLstmUlpBound);
}

TEST(DifferentialLstm, RecursiveHorizonWithinPredictBound) {
  // Recursive multi-step feeds rounding differences back into the input, so
  // this path gets the wider serving bound.
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  std::vector<double> blocked, reference;
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kBlocked);
    blocked = model->predict_horizon(series, 12);
  }
  {
    tensor::ScopedKernelMode mode(tensor::KernelMode::kReference);
    reference = model->predict_horizon(series, 12);
  }
  EXPECT_LE(verify::max_ulp_distance(blocked, reference), verify::kPredictUlpBound);
}

TEST(ServingDiff, LivePredictPassesDifferentialCheck) {
  const std::vector<double> series = testutil::seasonal_series(160, 100.0, 15.0, 24.0, 5);
  const auto model = quick_model(series);

  serving::ServiceConfig config;
  config.background_retrain = false;
  serving::PredictionService service(config);
  service.publish("diffcheck", *model);
  service.observe_many("diffcheck", series);

  const testutil::CounterDelta mismatches("ld_verify_diff_mismatch_total",
                                          {{"workload", "diffcheck"}});
  serving::set_verify_diff(true);
  const auto result = service.predict_detailed("diffcheck", 6);
  serving::set_verify_diff(false);

  EXPECT_EQ(result.level, fault::DegradationLevel::kLive);
  ASSERT_EQ(result.forecast.size(), 6u);
  EXPECT_EQ(mismatches.delta(), 0u)
      << "blocked and reference kernels diverged beyond kPredictUlpBound";
}

// ---------------------------------------------------------------------------
// BO trajectories: the batched (constant-liar) search must retrace the
// serial search exactly — zero ULP, not merely "close".

TEST(DifferentialBo, BatchedTrajectoryMatchesSerialExactly) {
  const std::vector<double> series = testutil::seasonal_series(220, 100.0, 15.0, 24.0, 9);
  const std::span<const double> train(series.data(), 160);
  const std::span<const double> validation(series.data() + 160, 60);

  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.max_iterations = 4;
  cfg.initial_random = 2;
  cfg.training.trainer.max_epochs = 3;
  cfg.training.max_train_windows = 400;
  cfg.seed = 31;

  cfg.batch_size = 1;
  const core::FitResult serial = core::LoadDynamics(cfg).fit(train, validation);
  cfg.batch_size = 4;
  const core::FitResult batched = core::LoadDynamics(cfg).fit(train, validation);

  EXPECT_EQ(verify::max_ulp_distance(serial.incumbent_trace(), batched.incumbent_trace()),
            0u);
  EXPECT_EQ(serial.best_record().hyperparameters, batched.best_record().hyperparameters);
}

// ---------------------------------------------------------------------------
// Metrics registry isolation (test_util satellite)

TEST(MetricsReset, RetiredCountersStopBeingScrapedButStayValid) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& before = reg.counter("ld_test_reset_total");
  before.inc(5);
  EXPECT_EQ(testutil::counter_value("ld_test_reset_total"), 5u);

  testutil::reset_metrics();
  // A cached reference survives the reset (graveyard semantics)...
  before.inc();  // must not crash
  // ...but the registry starts over: a re-resolve sees a fresh instrument.
  EXPECT_EQ(testutil::counter_value("ld_test_reset_total"), 0u);
  EXPECT_EQ(reg.prometheus_text().find("ld_test_reset_total 6"), std::string::npos);
}

TEST(MetricsReset, CounterDeltaIgnoresPriorState) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("ld_test_delta_total").inc(17);
  const testutil::CounterDelta delta("ld_test_delta_total");
  EXPECT_EQ(delta.delta(), 0u);
  reg.counter("ld_test_delta_total").inc(3);
  EXPECT_EQ(delta.delta(), 3u);
}

}  // namespace
