// Baseline predictors: Wood et al. (robust IRLS), CloudScale (FFT + Markov),
// CloudInsight (21-member council).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "baselines/cloudinsight.hpp"
#include "baselines/cloudscale.hpp"
#include "baselines/wood.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "timeseries/predictor.hpp"

namespace {

using namespace ld::baselines;
using ld::Rng;

std::vector<double> sine_series(std::size_t n, double period, double level = 100.0,
                                double amp = 40.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = level + amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

// --- Wood ---------------------------------------------------------------------

TEST(Wood, FitsArProcess) {
  Rng rng(3);
  std::vector<double> x(1500);
  x[0] = 50.0;
  for (std::size_t i = 1; i < x.size(); ++i)
    x[i] = 20.0 + 0.6 * x[i - 1] + rng.normal(0.0, 1.0);
  WoodPredictor wood({.lags = 2});
  wood.fit(std::span<const double>(x).subspan(0, 1200));
  // Coefficients are oldest-lag-first; the most recent lag carries ~0.6.
  EXPECT_NEAR(wood.coefficients()[2], 0.6, 0.08);
  double se = 0.0, naive = 0.0;
  for (std::size_t t = 1200; t < 1500; ++t) {
    const auto hist = std::span<const double>(x).subspan(0, t);
    const double p = wood.predict_next(hist);
    se += (p - x[t]) * (p - x[t]);
    naive += (x[t - 1] - x[t]) * (x[t - 1] - x[t]);
  }
  EXPECT_LT(se, naive);
}

TEST(Wood, RobustToOutliers) {
  // A clean line plus a few massive spikes: Huber IRLS must track the line
  // substantially better than plain OLS would be dragged by the spikes.
  std::vector<double> x(300);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 10.0 + 0.5 * static_cast<double>(i);
  for (const std::size_t spike : {50u, 120u, 200u}) x[spike] += 5000.0;
  WoodPredictor wood({.lags = 1});
  wood.fit(x);
  // Forecast from a clean suffix should continue the line, not the spikes.
  const std::vector<double> clean_tail{10.0 + 0.5 * 300.0};
  const double p = wood.predict_next(clean_tail);
  EXPECT_NEAR(p, 10.0 + 0.5 * 301.0, 15.0);
}

TEST(Wood, ShortHistoryFallsBack) {
  WoodPredictor wood;
  const std::vector<double> tiny{3.0, 4.0};
  wood.fit(tiny);
  EXPECT_EQ(wood.predict_next(tiny), 4.0);
}

TEST(Wood, InvalidConfigThrows) {
  EXPECT_THROW(WoodPredictor({.lags = 0}), std::invalid_argument);
  EXPECT_THROW(WoodPredictor({.huber_delta = 0.0}), std::invalid_argument);
}

// --- CloudScale ------------------------------------------------------------------

TEST(CloudScale, DetectsSeasonalityAndPredictsWell) {
  const auto series = sine_series(600, 24.0);
  CloudScalePredictor cs;
  cs.fit(std::span<const double>(series).subspan(0, 480));
  EXPECT_TRUE(cs.periodic_mode());
  double worst = 0.0;
  for (std::size_t t = 480; t < 560; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    worst = std::max(worst, std::abs(cs.predict_next(hist) - series[t]));
  }
  EXPECT_LT(worst, 12.0);  // well inside the 40-unit amplitude
}

TEST(CloudScale, FallsBackToMarkovOnAperiodicData) {
  Rng rng(11);
  std::vector<double> noise(600);
  // Mean-reverting noise: the Markov chain learns the pull toward the mean.
  noise[0] = 100.0;
  for (std::size_t i = 1; i < noise.size(); ++i)
    noise[i] = 100.0 + 0.5 * (noise[i - 1] - 100.0) + rng.normal(0.0, 10.0);
  CloudScalePredictor cs;
  cs.fit(std::span<const double>(noise).subspan(0, 500));
  EXPECT_FALSE(cs.periodic_mode());
  double se = 0.0, naive = 0.0;
  for (std::size_t t = 500; t < 600; ++t) {
    const auto hist = std::span<const double>(noise).subspan(0, t);
    const double p = cs.predict_next(hist);
    se += (p - noise[t]) * (p - noise[t]);
    naive += (noise[t - 1] - noise[t]) * (noise[t - 1] - noise[t]);
  }
  EXPECT_LT(se, naive);
}

TEST(CloudScale, TracksLevelDrift) {
  // Seasonal pattern whose level doubles: the ratio adjustment must follow.
  std::vector<double> series = sine_series(480, 24.0, 100.0, 20.0);
  for (std::size_t i = 240; i < series.size(); ++i) series[i] += 100.0;
  CloudScalePredictor cs;
  cs.fit(series);
  const double p = cs.predict_next(series);
  EXPECT_GT(p, 150.0);  // closer to the new level than the old one
}

TEST(CloudScale, BurstPaddingInflatesForecast) {
  const auto series = sine_series(480, 24.0);
  CloudScalePredictor plain;
  CloudScalePredictor padded({.burst_padding = 0.2});
  plain.fit(series);
  padded.fit(series);
  EXPECT_NEAR(padded.predict_next(series), 1.2 * plain.predict_next(series), 1e-9);
}

TEST(CloudScale, InvalidConfigThrows) {
  EXPECT_THROW(CloudScalePredictor({.markov_bins = 1}), std::invalid_argument);
}

// --- CloudInsight ------------------------------------------------------------------

TEST(CloudInsight, PoolHasTwentyOneMembers) {
  const auto pool = make_cloudinsight_pool();
  EXPECT_EQ(pool.size(), 21u);
  // All names unique.
  std::vector<std::string> names;
  for (const auto& p : pool) names.push_back(p->name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(CloudInsight, ConvergesToGoodExpertOnSeasonalData) {
  const auto series = sine_series(400, 16.0);
  CloudInsightPredictor ci;
  ld::ts::WalkForwardOptions options{.refit_every = 5};
  const auto preds = ld::ts::walk_forward(ci, series, 320, options);
  const std::span<const double> actual(series.data() + 320, series.size() - 320);
  const double mape = ld::metrics::mape(actual, preds);
  EXPECT_LT(mape, 12.0);
  EXPECT_NE(ci.current_best_member(), "n/a");
}

TEST(CloudInsight, BeatsItsWorstMemberOnArData) {
  Rng rng(13);
  std::vector<double> x(500);
  x[0] = 100.0;
  for (std::size_t i = 1; i < x.size(); ++i)
    x[i] = 30.0 + 0.7 * x[i - 1] + rng.normal(0.0, 4.0);

  ld::ts::WalkForwardOptions options{.refit_every = 5};
  CloudInsightPredictor council;
  const auto council_preds = ld::ts::walk_forward(council, x, 400, options);
  const std::span<const double> actual(x.data() + 400, 100);
  const double council_mape = ld::metrics::mape(actual, council_preds);

  double worst_mape = 0.0;
  for (auto& member : make_cloudinsight_pool()) {
    const auto preds = ld::ts::walk_forward(*member, x, 400, options);
    worst_mape = std::max(worst_mape, ld::metrics::mape(actual, preds));
  }
  EXPECT_LT(council_mape, worst_mape);
}

TEST(CloudInsight, CloneIsIndependent) {
  const auto series = sine_series(200, 16.0);
  CloudInsightPredictor a;
  a.fit(series);
  auto b = a.clone();
  // Both clones predict without touching each other.
  const double pa = a.predict_next(series);
  const double pb = b->predict_next(series);
  EXPECT_TRUE(std::isfinite(pa));
  EXPECT_NEAR(pa, pb, std::abs(pa) * 0.5 + 1.0);
}

TEST(CloudInsight, InvalidConfigThrows) {
  EXPECT_THROW(CloudInsightPredictor({.eval_window = 0}), std::invalid_argument);
}

}  // namespace
