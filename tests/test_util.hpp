// Shared helpers for the test suite: temp-dir lifecycle, deterministic
// series, and metrics-registry isolation. Every test target links
// test_util.cpp (see tests/CMakeLists.txt).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace ld::testutil {

/// RAII scratch directory under the system temp root, unique per (tag,
/// process). Created empty (a leftover from a crashed run is wiped first)
/// and recursively removed on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag);
  ~ScopedTempDir();
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }
  /// path()/name, as the std::string most APIs here take.
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

/// The canonical deterministic test series: base + amplitude*sin(2*pi*i /
/// period), plus a small seeded uniform jitter when noise_seed != 0.
/// Strictly positive for the defaults, so MAPE and scaling are well-defined.
[[nodiscard]] std::vector<double> seasonal_series(std::size_t n, double base = 100.0,
                                                  double amplitude = 12.0,
                                                  double period = 24.0,
                                                  std::uint64_t noise_seed = 0);

/// Retire all series in the process-wide metrics registry (graveyard
/// semantics — see MetricsRegistry::reset_for_testing). Call from SetUp()
/// when a test asserts absolute counter values.
void reset_metrics();

/// Current value of a counter in the global registry (0 if never bumped).
[[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                          const obs::Labels& labels = {});

/// Snapshot of one counter at construction; delta() is the growth since.
/// Immune to other tests' leftovers, unlike asserting absolute values.
class CounterDelta {
 public:
  explicit CounterDelta(std::string name, obs::Labels labels = {})
      : name_(std::move(name)), labels_(std::move(labels)),
        start_(counter_value(name_, labels_)) {}

  [[nodiscard]] std::uint64_t delta() const { return counter_value(name_, labels_) - start_; }

 private:
  std::string name_;
  obs::Labels labels_;
  std::uint64_t start_;
};

}  // namespace ld::testutil
