// Quantile (pinball-loss) forecasting: gradient correctness and the
// defining calibration property — a tau-quantile forecast should sit above
// roughly a tau fraction of the actuals.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "nn/loss.hpp"

namespace {

using namespace ld;

TEST(Pinball, GradientMatchesFiniteDifference) {
  const std::vector<double> targets{0.3, 0.6, 0.1};
  std::vector<double> preds{0.5, 0.2, 0.4};
  std::vector<double> grad(3), scratch(3);
  (void)nn::compute_loss(nn::Loss::kPinball, preds, targets, grad, 0.1, 0.85);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double eps = 1e-7;
    preds[i] += eps;
    const double lp = nn::compute_loss(nn::Loss::kPinball, preds, targets, scratch, 0.1, 0.85);
    preds[i] -= 2.0 * eps;
    const double lm = nn::compute_loss(nn::Loss::kPinball, preds, targets, scratch, 0.1, 0.85);
    preds[i] += eps;
    EXPECT_NEAR(grad[i], (lp - lm) / (2.0 * eps), 1e-6);
  }
}

TEST(Pinball, AsymmetryPenalizesUnderPrediction) {
  std::vector<double> grad(1);
  const std::vector<double> target{1.0};
  const std::vector<double> under{0.5}, over{1.5};
  const double under_loss =
      nn::compute_loss(nn::Loss::kPinball, under, target, grad, 0.1, 0.9);
  const double over_loss =
      nn::compute_loss(nn::Loss::kPinball, over, target, grad, 0.1, 0.9);
  EXPECT_GT(under_loss, over_loss * 5.0)
      << "at tau=0.9, under-prediction must cost 9x over-prediction";
}

TEST(Pinball, InvalidTauThrows) {
  std::vector<double> grad(1);
  const std::vector<double> a{1.0};
  EXPECT_THROW((void)nn::compute_loss(nn::Loss::kPinball, a, a, grad, 0.1, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)nn::compute_loss(nn::Loss::kPinball, a, a, grad, 0.1, 1.0),
               std::invalid_argument);
}

TEST(Pinball, QuantileModelIsCalibratedOnNoisySeries) {
  // Seasonal signal with noise: a P85 forecaster should sit above the actual
  // in roughly 85% of the test intervals (vs ~50% for a mean model).
  Rng rng(5);
  std::vector<double> series(700);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] =
        100.0 + 20.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0) +
        rng.normal(0.0, 10.0);
  const std::span<const double> all(series);

  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 40;
  training.trainer.learning_rate = 1e-2;
  training.trainer.loss = nn::Loss::kPinball;
  training.trainer.pinball_tau = 0.85;
  core::Hyperparameters hp{.history_length = 24, .cell_size = 12, .num_layers = 1,
                           .batch_size = 32, .loss = nn::Loss::kPinball};
  const core::TrainedModel model(all.subspan(0, 480), all.subspan(480, 100), hp, training, 3);

  const auto preds = model.predict_series(series, 580);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] >= series[580 + i]) ++covered;
  const double coverage = static_cast<double>(covered) / static_cast<double>(preds.size());
  EXPECT_GT(coverage, 0.70);
  EXPECT_LT(coverage, 0.98);
}

TEST(Pinball, HigherTauGivesHigherForecasts) {
  Rng rng(7);
  std::vector<double> series(500);
  for (std::size_t i = 0; i < series.size(); ++i) series[i] = 100.0 + rng.normal(0.0, 15.0);
  const std::span<const double> all(series);

  auto train_at = [&](double tau) {
    core::ModelTrainingConfig training;
    training.trainer.max_epochs = 30;
    training.trainer.learning_rate = 1e-2;
    training.trainer.loss = nn::Loss::kPinball;
    training.trainer.pinball_tau = tau;
    core::Hyperparameters hp{.history_length = 8, .cell_size = 8, .num_layers = 1,
                             .batch_size = 32, .loss = nn::Loss::kPinball};
    const core::TrainedModel model(all.subspan(0, 400), all.subspan(400, 50), hp, training, 9);
    const auto preds = model.predict_series(series, 450);
    double mean = 0.0;
    for (const double p : preds) mean += p;
    return mean / static_cast<double>(preds.size());
  };
  EXPECT_GT(train_at(0.9), train_at(0.3));
}

}  // namespace
