// End-to-end tests of the `loaddynamics` CLI, driven in-process: generate a
// trace, train a model, predict, evaluate and simulate — the full user
// journey through temp files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "app/cli_app.hpp"
#include "test_util.hpp"

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::vector<const char*> argv{"loaddynamics"};
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream out, err;
  CliResult result;
  result.code = ld::app::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CliJourney : public ::testing::Test {
 protected:
  CliJourney() : tmp_("cli"), trace_(tmp_.file("trace.csv")), model_(tmp_.file("model.ldm")) {}

  ld::testutil::ScopedTempDir tmp_;
  std::string trace_, model_;
};

TEST_F(CliJourney, HelpAndUnknownCommand) {
  const auto help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);

  const auto none = run({});
  EXPECT_EQ(none.code, 1);

  const auto bogus = run({"frobnicate"});
  EXPECT_EQ(bogus.code, 1);
  EXPECT_NE(bogus.err.find("unknown command"), std::string::npos);
}

TEST_F(CliJourney, MissingFlagReportsCleanError) {
  const auto result = run({"generate", "--workload", "wiki"});  // no --out
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--out"), std::string::npos);
}

TEST_F(CliJourney, GenerateWritesValidCsv) {
  const auto result =
      run({"generate", "--workload", "google", "--out", trace_, "--days", "6", "--seed", "3"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(fs::exists(trace_));
  EXPECT_NE(result.out.find("mean JAR"), std::string::npos);
}

TEST_F(CliJourney, FullTrainPredictEvaluateSimulateJourney) {
  // 1. generate
  ASSERT_EQ(run({"generate", "--workload", "azure", "--interval", "60", "--out", trace_,
                 "--days", "16", "--seed", "5", "--scale", "0.01"})
                .code,
            0);

  // 2. train (tiny budget; we only test the plumbing here)
  const auto train = run({"train", "--csv", trace_, "--interval", "60", "--model", model_,
                          "--iterations", "4", "--epochs", "8", "--seed", "5"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_TRUE(fs::exists(model_));
  EXPECT_NE(train.out.find("test MAPE"), std::string::npos);

  // 3. predict
  const std::string forecast = tmp_.file("forecast.csv");
  const auto predict = run({"predict", "--model", model_, "--csv", trace_, "--interval",
                            "60", "--horizon", "6", "--out", forecast});
  ASSERT_EQ(predict.code, 0) << predict.err;
  EXPECT_TRUE(fs::exists(forecast));
  EXPECT_NE(predict.out.find("t+6"), std::string::npos);

  // 4. evaluate
  const auto evaluate = run({"evaluate", "--csv", trace_, "--interval", "60",
                             "--iterations", "3", "--epochs", "6", "--seed", "5"});
  ASSERT_EQ(evaluate.code, 0) << evaluate.err;
  for (const char* name : {"loaddynamics", "cloudinsight", "cloudscale", "wood"})
    EXPECT_NE(evaluate.out.find(name), std::string::npos) << evaluate.out;

  // 5. simulate with each policy kind
  for (const char* policy : {"predictive", "reactive", "oracle"}) {
    const auto simulate = run({"simulate", "--model", model_, "--csv", trace_, "--interval",
                               "60", "--policy", policy});
    ASSERT_EQ(simulate.code, 0) << policy << ": " << simulate.err;
    EXPECT_NE(simulate.out.find("mean turnaround"), std::string::npos);
  }
}

TEST_F(CliJourney, PredictWithMissingModelFails) {
  ASSERT_EQ(run({"generate", "--workload", "lcg", "--out", trace_, "--days", "4"}).code, 0);
  const auto result = run({"predict", "--model", tmp_.file("nope.ldm"), "--csv", trace_});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST_F(CliJourney, TrainOnGarbageCsvFails) {
  const std::string bad = tmp_.file("bad.csv");
  std::FILE* f = std::fopen(bad.c_str(), "w");
  std::fputs("jar\nhello\nworld\n", f);
  std::fclose(f);
  const auto result = run({"train", "--csv", bad, "--model", model_});
  EXPECT_EQ(result.code, 2);
}

}  // namespace
