// Observability layer: metrics registry (concurrent counters, sharded
// histograms, Prometheus/JSON scrape) and the tracing layer (span nesting,
// ring-buffer drops, zero cost when disabled, Chrome trace-event JSON).
//
// The registry and tracer are process-wide singletons shared by every test
// in this binary, so each test uses its own series names and restores the
// tracer to the stopped state.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using ld::obs::MetricsRegistry;
using ld::obs::Tracer;

// --- minimal Chrome-trace parsing -----------------------------------------
// Events carry flat fields plus at most one nested {"args":{...}} object, so
// a brace scanner that ignores one nesting level is enough.

struct ParsedEvent {
  std::string name;
  std::string phase;
  double ts = -1.0;   // microseconds
  double dur = -1.0;  // microseconds ('X' only)
  long tid = -1;
  bool has_args = false;
};

std::string field_str(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  return event.substr(start, event.find('"', start) - start);
}

double field_num(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(event.c_str() + at + needle.size(), nullptr);
}

std::vector<ParsedEvent> parse_trace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::size_t list = json.find("\"traceEvents\":[");
  EXPECT_NE(list, std::string::npos) << "missing traceEvents array";
  if (list == std::string::npos) return events;
  std::size_t pos = list;
  while ((pos = json.find('{', pos + 1)) != std::string::npos) {
    int depth = 1;
    std::size_t end = pos;
    while (depth > 0 && ++end < json.size()) {
      if (json[end] == '{') ++depth;
      if (json[end] == '}') --depth;
    }
    EXPECT_EQ(depth, 0) << "unbalanced braces in trace JSON";
    const std::string body = json.substr(pos, end - pos + 1);
    ParsedEvent e;
    e.name = field_str(body, "name");
    e.phase = field_str(body, "ph");
    e.ts = field_num(body, "ts");
    e.dur = field_num(body, "dur");
    e.tid = static_cast<long>(field_num(body, "tid"));
    e.has_args = body.find("\"args\"") != std::string::npos;
    events.push_back(std::move(e));
    pos = end;
  }
  return events;
}

std::string dump_trace() {
  std::ostringstream out;
  Tracer::instance().write_json(out);
  return out.str();
}

// --- registry --------------------------------------------------------------

TEST(ObsRegistry, CountersSumExactlyAcrossThreads) {
  auto& counter = MetricsRegistry::global().counter("obs_test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  auto& gauge = MetricsRegistry::global().gauge("obs_test_gauge");
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.add(1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.75);
  gauge.set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
}

TEST(ObsRegistry, HistogramMergesThreadShards) {
  auto& hist =
      MetricsRegistry::global().histogram("obs_test_sharded_seconds", {}, 1e-6, 10.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 1; i <= kPerThread; ++i)
        hist.observe(1e-4 * (t + 1) * i / kPerThread);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const ld::metrics::LatencyHistogram merged = hist.snapshot();
  EXPECT_EQ(merged.count(), hist.count());
  EXPECT_GT(merged.percentile(50), 0.0);
  EXPECT_LE(merged.percentile(50), merged.percentile(99));
  EXPECT_DOUBLE_EQ(merged.percentile(0), merged.min());
}

TEST(ObsRegistry, SameSeriesSameInstrumentAndKindConflictThrows) {
  auto& a = MetricsRegistry::global().counter("obs_test_identity_total",
                                              {{"workload", "wiki"}, {"stage", "train"}});
  // Label order must not matter: the registry canonicalizes by key.
  auto& b = MetricsRegistry::global().counter("obs_test_identity_total",
                                              {{"stage", "train"}, {"workload", "wiki"}});
  EXPECT_EQ(&a, &b);
  auto& other = MetricsRegistry::global().counter("obs_test_identity_total",
                                                  {{"workload", "google"}});
  EXPECT_NE(&a, &other);
  EXPECT_THROW(MetricsRegistry::global().gauge("obs_test_identity_total",
                                               {{"workload", "wiki"}, {"stage", "train"}}),
               std::invalid_argument);
}

TEST(ObsRegistry, PrometheusTextFormat) {
  auto& reg = MetricsRegistry::global();
  reg.counter("obs_test_scrape_total", {{"workload", "wiki"}}).inc(42);
  reg.gauge("obs_test_scrape_depth").set(7.0);
  auto& hist = reg.histogram("obs_test_scrape_seconds", {}, 1e-6, 10.0);
  for (int i = 1; i <= 100; ++i) hist.observe(0.001 * i);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE obs_test_scrape_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_total{workload=\"wiki\"} 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_scrape_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_scrape_seconds summary"), std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.95", "0.99"})
    EXPECT_NE(text.find("obs_test_scrape_seconds{quantile=\"" + std::string(q) + "\"}"),
              std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_count 100"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_sum "), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_min "), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_max "), std::string::npos);
}

TEST(ObsRegistry, JsonIsSingleLine) {
  MetricsRegistry::global().counter("obs_test_json_total").inc();
  const std::string json = MetricsRegistry::global().json();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "json() must stay protocol-line safe";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"obs_test_json_total\""), std::string::npos);
}

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, SpansRecordNestingAndThreads) {
  Tracer::instance().start();
  {
    LD_TRACE_SPAN("obs_test.outer");
    {
      LD_TRACE_SPAN("obs_test.inner");
      LD_TRACE_COUNTER("obs_test.counter", 3);
    }
    std::thread([] { LD_TRACE_SPAN("obs_test.worker"); }).join();
  }
  Tracer::instance().stop();
  const std::vector<ParsedEvent> events = parse_trace(dump_trace());
  Tracer::instance().clear();

  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  const ParsedEvent* worker = nullptr;
  const ParsedEvent* counter = nullptr;
  for (const ParsedEvent& e : events) {
    if (e.name == "obs_test.outer") outer = &e;
    if (e.name == "obs_test.inner") inner = &e;
    if (e.name == "obs_test.worker") worker = &e;
    if (e.name == "obs_test.counter") counter = &e;
    if (e.phase == "X") {
      EXPECT_GE(e.ts, 0.0) << e.name;
      EXPECT_GE(e.dur, 0.0) << e.name;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(outer->phase, "X");
  EXPECT_EQ(counter->phase, "C");
  EXPECT_TRUE(counter->has_args) << "counter events carry their value in args";
  // Nesting containment: the inner span lies within the outer one.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-6);
  // The worker span ran on a different thread.
  EXPECT_NE(worker->tid, outer->tid);
  EXPECT_EQ(inner->tid, outer->tid);
}

TEST(ObsTrace, DisabledSpansCostNothing) {
  Tracer::instance().stop();
  Tracer::instance().clear();
  const std::size_t threads_before = Tracer::instance().thread_count();
  std::thread([] {
    for (int i = 0; i < 1000; ++i) {
      LD_TRACE_SPAN("obs_test.disabled");
      LD_TRACE_COUNTER("obs_test.disabled_counter", i);
      LD_TRACE_INSTANT("obs_test.disabled_instant");
    }
  }).join();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().thread_count(), threads_before)
      << "disabled spans must not even register a thread buffer";
}

TEST(ObsTrace, DropsWhenFullNeverBlocks) {
  Tracer::instance().set_capacity(8);
  Tracer::instance().start();
  // A fresh thread gets a fresh (capacity-8) buffer; overflow must drop, not
  // block or overwrite.
  std::thread([] {
    for (int i = 0; i < 100; ++i) LD_TRACE_INSTANT("obs_test.flood");
  }).join();
  Tracer::instance().stop();
  EXPECT_GE(Tracer::instance().dropped_count(), 92u);
  const std::string json = dump_trace();
  Tracer::instance().clear();
  Tracer::instance().set_capacity(1 << 18);
  EXPECT_NE(json.find("obs_test.flood"), std::string::npos);
}

TEST(ObsTrace, TraceSessionActivatesFromEnv) {
  const std::string path = testing::TempDir() + "obs_test_trace.json";
  ASSERT_EQ(setenv("LD_TRACE", path.c_str(), 1), 0);
  {
    ld::obs::TraceSession session;
    EXPECT_TRUE(session.active());
    EXPECT_EQ(session.path(), path);
    LD_TRACE_SPAN("obs_test.session");
  }
  ASSERT_EQ(unsetenv("LD_TRACE"), 0);
  EXPECT_FALSE(Tracer::enabled()) << "session destruction stops the tracer";

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "trace file written on session destruction";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::vector<ParsedEvent> events = parse_trace(buffer.str());
  bool found = false;
  for (const ParsedEvent& e : events) found |= e.name == "obs_test.session";
  EXPECT_TRUE(found);
  std::remove(path.c_str());
  Tracer::instance().clear();
}

}  // namespace
