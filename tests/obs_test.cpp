// Observability layer: metrics registry (concurrent counters, sharded
// histograms, Prometheus/JSON scrape) and the tracing layer (span nesting,
// ring-buffer drops, zero cost when disabled, Chrome trace-event JSON).
//
// The registry and tracer are process-wide singletons shared by every test
// in this binary, so each test uses its own series names and restores the
// tracer to the stopped state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace {

using ld::obs::MetricsRegistry;
using ld::obs::Tracer;

// --- minimal Chrome-trace parsing -----------------------------------------
// Events carry flat fields plus at most one nested {"args":{...}} object, so
// a brace scanner that ignores one nesting level is enough.

struct ParsedEvent {
  std::string name;
  std::string phase;
  double ts = -1.0;   // microseconds
  double dur = -1.0;  // microseconds ('X' only)
  long tid = -1;
  bool has_args = false;
};

std::string field_str(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  return event.substr(start, event.find('"', start) - start);
}

double field_num(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(event.c_str() + at + needle.size(), nullptr);
}

std::vector<ParsedEvent> parse_trace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::size_t list = json.find("\"traceEvents\":[");
  EXPECT_NE(list, std::string::npos) << "missing traceEvents array";
  if (list == std::string::npos) return events;
  std::size_t pos = list;
  while ((pos = json.find('{', pos + 1)) != std::string::npos) {
    int depth = 1;
    std::size_t end = pos;
    while (depth > 0 && ++end < json.size()) {
      if (json[end] == '{') ++depth;
      if (json[end] == '}') --depth;
    }
    EXPECT_EQ(depth, 0) << "unbalanced braces in trace JSON";
    const std::string body = json.substr(pos, end - pos + 1);
    ParsedEvent e;
    e.name = field_str(body, "name");
    e.phase = field_str(body, "ph");
    e.ts = field_num(body, "ts");
    e.dur = field_num(body, "dur");
    e.tid = static_cast<long>(field_num(body, "tid"));
    e.has_args = body.find("\"args\"") != std::string::npos;
    events.push_back(std::move(e));
    pos = end;
  }
  return events;
}

std::string dump_trace() {
  std::ostringstream out;
  Tracer::instance().write_json(out);
  return out.str();
}

// --- registry --------------------------------------------------------------

TEST(ObsRegistry, CountersSumExactlyAcrossThreads) {
  auto& counter = MetricsRegistry::global().counter("obs_test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  auto& gauge = MetricsRegistry::global().gauge("obs_test_gauge");
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.add(1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.75);
  gauge.set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
}

TEST(ObsRegistry, HistogramMergesThreadShards) {
  auto& hist =
      MetricsRegistry::global().histogram("obs_test_sharded_seconds", {}, 1e-6, 10.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 1; i <= kPerThread; ++i)
        hist.observe(1e-4 * (t + 1) * i / kPerThread);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const ld::metrics::LatencyHistogram merged = hist.snapshot();
  EXPECT_EQ(merged.count(), hist.count());
  EXPECT_GT(merged.percentile(50), 0.0);
  EXPECT_LE(merged.percentile(50), merged.percentile(99));
  EXPECT_DOUBLE_EQ(merged.percentile(0), merged.min());
}

TEST(ObsRegistry, SameSeriesSameInstrumentAndKindConflictThrows) {
  auto& a = MetricsRegistry::global().counter("obs_test_identity_total",
                                              {{"workload", "wiki"}, {"stage", "train"}});
  // Label order must not matter: the registry canonicalizes by key.
  auto& b = MetricsRegistry::global().counter("obs_test_identity_total",
                                              {{"stage", "train"}, {"workload", "wiki"}});
  EXPECT_EQ(&a, &b);
  auto& other = MetricsRegistry::global().counter("obs_test_identity_total",
                                                  {{"workload", "google"}});
  EXPECT_NE(&a, &other);
  EXPECT_THROW(MetricsRegistry::global().gauge("obs_test_identity_total",
                                               {{"workload", "wiki"}, {"stage", "train"}}),
               std::invalid_argument);
}

TEST(ObsRegistry, PrometheusTextFormat) {
  auto& reg = MetricsRegistry::global();
  reg.counter("obs_test_scrape_total", {{"workload", "wiki"}}).inc(42);
  reg.gauge("obs_test_scrape_depth").set(7.0);
  auto& hist = reg.histogram("obs_test_scrape_seconds", {}, 1e-6, 10.0);
  for (int i = 1; i <= 100; ++i) hist.observe(0.001 * i);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE obs_test_scrape_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_total{workload=\"wiki\"} 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_scrape_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_scrape_seconds summary"), std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.95", "0.99"})
    EXPECT_NE(text.find("obs_test_scrape_seconds{quantile=\"" + std::string(q) + "\"}"),
              std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_count 100"), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_sum "), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_min "), std::string::npos);
  EXPECT_NE(text.find("obs_test_scrape_seconds_max "), std::string::npos);
}

TEST(ObsRegistry, JsonIsSingleLine) {
  MetricsRegistry::global().counter("obs_test_json_total").inc();
  const std::string json = MetricsRegistry::global().json();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "json() must stay protocol-line safe";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"obs_test_json_total\""), std::string::npos);
}

TEST(ObsRegistry, QuantileLabelMergesIntoSortedPosition) {
  // Histogram labels whose keys sort around "quantile" must produce one
  // canonically key-sorted label set — the extra quantile label is merged in
  // position, not appended — so scrapes are byte-stable regardless of which
  // labels a series happens to carry.
  auto& reg = MetricsRegistry::global();
  auto& hist = reg.histogram("obs_test_merge_seconds",
                             {{"workload", "wiki"}, {"command", "load"}}, 1e-6, 10.0);
  hist.observe(0.5);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(
      text.find("obs_test_merge_seconds{command=\"load\",quantile=\"0.5\",workload=\"wiki\"}"),
      std::string::npos)
      << text;
  EXPECT_EQ(text.find("quantile=\"0.5\",command="), std::string::npos)
      << "quantile must not be appended after keys that sort before it";
  // Two consecutive scrapes with no traffic in between are byte-identical.
  EXPECT_EQ(reg.prometheus_text(), reg.prometheus_text());
}

// --- cardinality governor --------------------------------------------------

/// Governor tests mutate process-global state (the series cap); reset on both
/// sides so neighbouring tests see an ungoverned registry.
struct GovernedRegistry {
  GovernedRegistry(std::size_t cap) {
    MetricsRegistry::global().reset_for_testing();
    MetricsRegistry::global().set_max_series(cap);
  }
  ~GovernedRegistry() { MetricsRegistry::global().reset_for_testing(); }
};

/// Sum of every `name{...}` sample value in a Prometheus exposition.
double sum_series(const std::string& text, const std::string& name) {
  double total = 0.0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + "{", 0) != 0 && line.rfind(name + " ", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    total += std::strtod(line.c_str() + space + 1, nullptr);
  }
  return total;
}

TEST(ObsGovernor, CapRollsLongTailIntoOther) {
  const GovernedRegistry guard(40);
  auto& reg = MetricsRegistry::global();
  std::uint64_t total = 0;
  for (int w = 0; w < 100; ++w) {
    char name[8];
    std::snprintf(name, sizeof name, "w%02d", w);
    reg.counter("obs_gov_total", {{"workload", name}}).inc(w + 1);
    total += static_cast<std::uint64_t>(w + 1);
  }
  EXPECT_LE(reg.exposed_series_count(), 40u);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("obs_gov_total{workload=\"__other\"}"), std::string::npos);
  // Conservation: rolling up must not lose a single count.
  EXPECT_DOUBLE_EQ(sum_series(text, "obs_gov_total"), static_cast<double>(total));
  // Self-metrics report the pressure.
  EXPECT_GT(reg.counter("ld_metrics_rollup_total").value(), 0u);
  EXPECT_NE(text.find("ld_metrics_series_total"), std::string::npos);
}

TEST(ObsGovernor, PromotionDemotionPreservesMonotonicityAndTotals) {
  const GovernedRegistry guard(20);
  auto& reg = MetricsRegistry::global();
  std::uint64_t total = 0;
  for (int w = 0; w < 20; ++w) {
    char name[8];
    std::snprintf(name, sizeof name, "w%02d", w);
    reg.counter("obs_gov2_total", {{"workload", name}}).inc(w + 1);
    total += static_cast<std::uint64_t>(w + 1);
  }
  // "w19" landed in the rolled-up tail; make it the traffic heavy hitter.
  const std::string first = reg.prometheus_text();
  EXPECT_EQ(first.find("obs_gov2_total{workload=\"w19\"}"), std::string::npos);
  EXPECT_DOUBLE_EQ(sum_series(first, "obs_gov2_total"), static_cast<double>(total));
  for (int i = 0; i < 200; ++i) ld::obs::touch_workload("w19");

  // The next scrape's rebalance promotes w19 (demoting a cold workload); a
  // fresh registration now resolves to a real series, not the __other twin.
  const std::string second = reg.prometheus_text();
  auto& promoted = reg.counter("obs_gov2_total", {{"workload", "w19"}});
  promoted.inc(5);
  total += 5;
  const std::string third = reg.prometheus_text();
  EXPECT_NE(third.find("obs_gov2_total{workload=\"w19\"} 5"), std::string::npos)
      << third;
  // One cold workload (value <= 6) was demoted; its pre-demotion value leaves
  // the sum like a Prometheus counter reset, but nothing else is lost and
  // nothing is ever double-counted. The cap still holds.
  const double after = sum_series(third, "obs_gov2_total");
  EXPECT_LE(after, static_cast<double>(total));
  EXPECT_GE(after, static_cast<double>(total - 6));
  EXPECT_LE(reg.exposed_series_count(), 20u);

  // __other never decreases across the three scrapes (counter monotonicity
  // as a scraper sees it).
  const auto other_value = [](const std::string& text) {
    const std::string needle = "obs_gov2_total{workload=\"__other\"} ";
    const std::size_t at = text.find(needle);
    return at == std::string::npos ? -1.0
                                   : std::strtod(text.c_str() + at + needle.size(), nullptr);
  };
  EXPECT_GE(other_value(second), other_value(first));
  EXPECT_GE(other_value(third), other_value(second));
}

TEST(ObsGovernor, ExpositionStaysParseableAtCap) {
  const GovernedRegistry guard(60);
  auto& reg = MetricsRegistry::global();
  for (int w = 0; w < 300; ++w) {
    const std::string name = "tenant" + std::to_string(w);
    reg.counter("obs_gov3_total", {{"workload", name}}).inc();
    reg.histogram("obs_gov3_seconds", {{"workload", name}}, 1e-6, 10.0).observe(0.01);
    ld::obs::touch_workload(name);
  }
  EXPECT_LE(reg.exposed_series_count(), 60u);
  const std::string text = reg.prometheus_text();
  // Every line is either a comment or "name[{labels}] value" with a finite
  // value — a scraper never sees a torn or unparseable line at the cap.
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++samples;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_TRUE(std::isfinite(value)) << line;
    EXPECT_EQ(*end, '\0') << line;
    const std::size_t open = line.find('{');
    if (open != std::string::npos)
      EXPECT_LT(line.find('}'), space) << "unclosed label set: " << line;
  }
  // Scrape cost is O(cap): histograms expand to 8 lines each, but the number
  // of emitted series is bounded by the cap, not the 300-tenant fleet.
  EXPECT_LE(samples, 60u * 8u);
}

// --- SLO burn rates --------------------------------------------------------

TEST(ObsSlo, DualWindowBurnRatesAreDeterministic) {
  ld::obs::SloTracker tracker("obs_test_slo_local", {0.01, 60, 3600});
  EXPECT_EQ(tracker.rates_at(5000).fast, 0.0) << "idle tracker burns nothing";

  // 1% breaches against a 1% budget: burn rate exactly 1 in both windows.
  const std::uint64_t now = 10'000;
  for (int i = 0; i < 99; ++i) tracker.record_at(now, false);
  tracker.record_at(now, true);
  EXPECT_NEAR(tracker.rates_at(now).fast, 1.0, 1e-12);
  EXPECT_NEAR(tracker.rates_at(now).slow, 1.0, 1e-12);

  // Past the fast window the spike ages out of it but stays in the slow one.
  EXPECT_EQ(tracker.rates_at(now + 61).fast, 0.0);
  EXPECT_NEAR(tracker.rates_at(now + 61).slow, 1.0, 1e-12);
  EXPECT_EQ(tracker.rates_at(now + 3601).slow, 0.0);

  // An all-breach burst burns at 1/budget.
  for (int i = 0; i < 10; ++i) tracker.record_at(now + 7200, true);
  EXPECT_NEAR(tracker.rates_at(now + 7200).fast, 100.0, 1e-9);
}

TEST(ObsSlo, TrackersPublishGaugesOnScrape) {
  auto& tracker = ld::obs::slo_tracker("obs_test_slo_pub", {0.5, 60, 3600});
  tracker.record(true);
  const std::string text = MetricsRegistry::global().prometheus_text();
  EXPECT_NE(
      text.find("ld_slo_burn_rate{slo=\"obs_test_slo_pub\",window=\"fast\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("ld_slo_burn_rate{slo=\"obs_test_slo_pub\",window=\"slow\"}"),
            std::string::npos);
}

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, SpansRecordNestingAndThreads) {
  Tracer::instance().start();
  {
    LD_TRACE_SPAN("obs_test.outer");
    {
      LD_TRACE_SPAN("obs_test.inner");
      LD_TRACE_COUNTER("obs_test.counter", 3);
    }
    std::thread([] { LD_TRACE_SPAN("obs_test.worker"); }).join();
  }
  Tracer::instance().stop();
  const std::vector<ParsedEvent> events = parse_trace(dump_trace());
  Tracer::instance().clear();

  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  const ParsedEvent* worker = nullptr;
  const ParsedEvent* counter = nullptr;
  for (const ParsedEvent& e : events) {
    if (e.name == "obs_test.outer") outer = &e;
    if (e.name == "obs_test.inner") inner = &e;
    if (e.name == "obs_test.worker") worker = &e;
    if (e.name == "obs_test.counter") counter = &e;
    if (e.phase == "X") {
      EXPECT_GE(e.ts, 0.0) << e.name;
      EXPECT_GE(e.dur, 0.0) << e.name;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(outer->phase, "X");
  EXPECT_EQ(counter->phase, "C");
  EXPECT_TRUE(counter->has_args) << "counter events carry their value in args";
  // Nesting containment: the inner span lies within the outer one.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-6);
  // The worker span ran on a different thread.
  EXPECT_NE(worker->tid, outer->tid);
  EXPECT_EQ(inner->tid, outer->tid);
}

TEST(ObsTrace, DisabledSpansCostNothing) {
  Tracer::instance().stop();
  Tracer::instance().clear();
  const std::size_t threads_before = Tracer::instance().thread_count();
  std::thread([] {
    for (int i = 0; i < 1000; ++i) {
      LD_TRACE_SPAN("obs_test.disabled");
      LD_TRACE_COUNTER("obs_test.disabled_counter", i);
      LD_TRACE_INSTANT("obs_test.disabled_instant");
    }
  }).join();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().thread_count(), threads_before)
      << "disabled spans must not even register a thread buffer";
}

TEST(ObsTrace, DropsWhenFullNeverBlocks) {
  Tracer::instance().set_capacity(8);
  Tracer::instance().start();
  // A fresh thread gets a fresh (capacity-8) buffer; overflow must drop, not
  // block or overwrite.
  std::thread([] {
    for (int i = 0; i < 100; ++i) LD_TRACE_INSTANT("obs_test.flood");
  }).join();
  Tracer::instance().stop();
  EXPECT_GE(Tracer::instance().dropped_count(), 92u);
  const std::string json = dump_trace();
  Tracer::instance().clear();
  Tracer::instance().set_capacity(1 << 18);
  EXPECT_NE(json.find("obs_test.flood"), std::string::npos);
}

TEST(ObsTrace, TraceSessionActivatesFromEnv) {
  const std::string path = testing::TempDir() + "obs_test_trace.json";
  ASSERT_EQ(setenv("LD_TRACE", path.c_str(), 1), 0);
  {
    ld::obs::TraceSession session;
    EXPECT_TRUE(session.active());
    EXPECT_EQ(session.path(), path);
    LD_TRACE_SPAN("obs_test.session");
  }
  ASSERT_EQ(unsetenv("LD_TRACE"), 0);
  EXPECT_FALSE(Tracer::enabled()) << "session destruction stops the tracer";

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "trace file written on session destruction";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::vector<ParsedEvent> events = parse_trace(buffer.str());
  bool found = false;
  for (const ParsedEvent& e : events) found |= e.name == "obs_test.session";
  EXPECT_TRUE(found);
  std::remove(path.c_str());
  Tracer::instance().clear();
}

TEST(ObsTrace, FlowEventsCarryRequestIdAndCategory) {
  Tracer::instance().start();
  Tracer::instance().record_flow("req.frontend", 's', 42, 7.0);
  Tracer::instance().record_flow("req.shard", 't', 42, 3.0);
  Tracer::instance().record_flow("req.done", 'f', 42);
  Tracer::instance().stop();
  const std::string json = dump_trace();
  Tracer::instance().clear();

  for (const char* needle :
       {"\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\"", "\"cat\":\"request\"",
        "\"id\":42,\"args\":{\"value\":"})
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  // The terminating 'f' step binds to the enclosing step ("bp":"e"), which
  // Perfetto needs to draw the arrow to the last event.
  const std::size_t f_at = json.find("\"ph\":\"f\"");
  ASSERT_NE(f_at, std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\"", f_at), std::string::npos);
}

TEST(ObsTrace, DeterministicSamplerPicksEveryNth) {
  Tracer::instance().set_sample_every(4);
  EXPECT_FALSE(Tracer::sampled(4)) << "sampling requires the tracer enabled";
  Tracer::instance().start();
  EXPECT_TRUE(Tracer::sampled(4));
  EXPECT_TRUE(Tracer::sampled(8));
  EXPECT_FALSE(Tracer::sampled(1));
  EXPECT_FALSE(Tracer::sampled(7));
  Tracer::instance().set_sample_every(1);
  EXPECT_TRUE(Tracer::sampled(7)) << "1/1 sampling keeps every request";
  Tracer::instance().set_sample_every(0);  // 0 normalizes to 1
  EXPECT_EQ(Tracer::sample_every(), 1u);
  Tracer::instance().stop();
  Tracer::instance().clear();
}

TEST(ObsTrace, RequestScopeNestsAndIsThreadLocal) {
  using ld::obs::RequestScope;
  EXPECT_EQ(RequestScope::current(), 0u);
  {
    const RequestScope outer(42);
    EXPECT_EQ(RequestScope::current(), 42u);
    {
      const RequestScope inner(7);
      EXPECT_EQ(RequestScope::current(), 7u);
    }
    EXPECT_EQ(RequestScope::current(), 42u) << "scopes restore on unwind";
    std::thread([] {
      EXPECT_EQ(RequestScope::current(), 0u) << "request ids never leak across threads";
    }).join();
  }
  EXPECT_EQ(RequestScope::current(), 0u);
}

}  // namespace
