// Time-series substrate: smoothing forecasters, kNN, statistics, the ARIMA
// family and FFT/period detection.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "timeseries/arima.hpp"
#include "timeseries/fft.hpp"
#include "timeseries/knn.hpp"
#include "timeseries/predictor.hpp"
#include "timeseries/smoothing.hpp"
#include "timeseries/stats.hpp"

namespace {

using namespace ld::ts;
using ld::Rng;

std::vector<double> constant_series(std::size_t n, double v) { return std::vector<double>(n, v); }

std::vector<double> linear_series(std::size_t n, double a, double b) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = a + b * static_cast<double>(i);
  return out;
}

std::vector<double> sine_series(std::size_t n, double period, double level = 10.0,
                                double amp = 3.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = level + amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

// --- Smoothing forecasters ---------------------------------------------

TEST(Smoothing, AllPredictConstantExactly) {
  const auto series = constant_series(50, 7.5);
  MeanPredictor mean(10);
  WmaPredictor wma(8);
  EmaPredictor ema(0.4);
  BrownDesPredictor brown(0.4);
  HoltDesPredictor holt(0.5, 0.3);
  for (Predictor* p :
       std::initializer_list<Predictor*>{&mean, &wma, &ema, &brown, &holt}) {
    EXPECT_NEAR(p->predict_next(series), 7.5, 1e-9) << p->name();
  }
}

TEST(Smoothing, TrendModelsExtrapolateLinearTrend) {
  const auto series = linear_series(100, 5.0, 2.0);  // next value = 5 + 2*100 = 205
  HoltDesPredictor holt(0.8, 0.8);
  BrownDesPredictor brown(0.9);
  EXPECT_NEAR(holt.predict_next(series), 205.0, 2.0);
  EXPECT_NEAR(brown.predict_next(series), 205.0, 4.0);
  // Flat models lag behind a trend — sanity check of the difference.
  MeanPredictor mean(10);
  EXPECT_LT(mean.predict_next(series), 205.0);
}

TEST(Smoothing, WmaWeightsRecentMore) {
  // Series jumps at the end; WMA must sit closer to the new level than mean.
  std::vector<double> series = constant_series(20, 10.0);
  series.back() = 30.0;
  WmaPredictor wma(5);
  MeanPredictor mean(5);
  EXPECT_GT(wma.predict_next(series), mean.predict_next(series));
}

TEST(Smoothing, InvalidParamsThrow) {
  EXPECT_THROW(WmaPredictor(0), std::invalid_argument);
  EXPECT_THROW(EmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EmaPredictor(1.5), std::invalid_argument);
  EXPECT_THROW(HoltDesPredictor(0.5, 0.0), std::invalid_argument);
}

TEST(Smoothing, EmptyHistoryThrows) {
  const std::vector<double> empty;
  MeanPredictor mean;
  EXPECT_THROW((void)mean.predict_next(empty), std::invalid_argument);
}

// --- kNN ------------------------------------------------------------------

TEST(Knn, RecallsRepeatingPattern) {
  // Strict 4-periodic pattern: kNN must find exact matches.
  std::vector<double> series;
  for (int r = 0; r < 12; ++r)
    for (const double v : {1.0, 5.0, 9.0, 5.0}) series.push_back(v);
  // History ends right before a "1.0" phase.
  KnnPredictor knn(3, 4);
  EXPECT_NEAR(knn.predict_next(series), 1.0, 1e-9);
}

TEST(Knn, ShortHistoryFallsBack) {
  const std::vector<double> series{4.0, 5.0};
  KnnPredictor knn(3, 8);
  EXPECT_EQ(knn.predict_next(series), 5.0);
}

// --- Statistics ------------------------------------------------------------

TEST(Stats, MeanVarianceStd) {
  const std::vector<double> x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_DOUBLE_EQ(variance(x), 4.0);
  EXPECT_DOUBLE_EQ(stddev(x), 2.0);
}

TEST(Stats, AcfOfPeriodicSignalPeaksAtPeriod) {
  const auto series = sine_series(256, 16.0);
  const auto rho = acf(series, 24);
  EXPECT_NEAR(rho[0], 1.0, 1e-12);
  EXPECT_GT(rho[16], 0.9);
  EXPECT_LT(rho[8], -0.9);  // anti-phase at half period
}

TEST(Stats, PacfOfAr1DecaysAfterLag1) {
  Rng rng(3);
  std::vector<double> x(2000);
  x[0] = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) x[i] = 0.7 * x[i - 1] + rng.normal();
  const auto p = pacf(x, 5);
  EXPECT_NEAR(p[1], 0.7, 0.06);
  for (std::size_t lag = 2; lag <= 5; ++lag) EXPECT_LT(std::abs(p[lag]), 0.12);
}

class DifferenceRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DifferenceRoundTrip, UndifferenceInvertsDifference) {
  Rng rng(GetParam());
  std::vector<double> x(60);
  for (double& v : x) v = rng.uniform(0.0, 100.0);
  const auto d = difference(x, 1);
  const auto rebuilt = undifference(d, x[0]);
  ASSERT_EQ(rebuilt.size(), x.size() - 1);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) EXPECT_NEAR(rebuilt[i], x[i + 1], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferenceRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Stats, DifferenceRemovesLinearTrend) {
  const auto series = linear_series(30, 3.0, 2.0);
  const auto d = difference(series, 1);
  for (const double v : d) EXPECT_NEAR(v, 2.0, 1e-12);
  const auto d2 = difference(series, 2);
  for (const double v : d2) EXPECT_NEAR(v, 0.0, 1e-12);
}

// --- AR / ARMA / ARIMA -------------------------------------------------------

TEST(Ar, RecoversAr2Coefficients) {
  Rng rng(13);
  std::vector<double> x(5000);
  x[0] = x[1] = 0.0;
  for (std::size_t i = 2; i < x.size(); ++i)
    x[i] = 1.0 + 0.5 * x[i - 1] + 0.3 * x[i - 2] + rng.normal(0.0, 0.5);
  ArPredictor ar(2);
  ar.fit(x);
  ASSERT_EQ(ar.coefficients().size(), 2u);
  EXPECT_NEAR(ar.coefficients()[0], 0.5, 0.05);
  EXPECT_NEAR(ar.coefficients()[1], 0.3, 0.05);
}

TEST(Ar, PredictsLinearRecurrenceExactly) {
  // x_t = 2 x_{t-1} - x_{t-2} generates a line; AR(2) fits it exactly.
  const auto series = linear_series(60, 1.0, 3.0);
  ArPredictor ar(2);
  ar.fit(series);
  EXPECT_NEAR(ar.predict_next(series), 1.0 + 3.0 * 60.0, 1e-3);
}

TEST(Arma, FitsArmaProcessBetterThanNaive) {
  Rng rng(21);
  std::vector<double> x(3000), eps(3000);
  for (double& e : eps) e = rng.normal(0.0, 1.0);
  x[0] = 10.0;
  for (std::size_t i = 1; i < x.size(); ++i)
    x[i] = 2.0 + 0.75 * x[i - 1] + eps[i] + 0.4 * eps[i - 1];
  ArmaPredictor arma(1, 1);
  arma.fit(std::span<const double>(x).subspan(0, 2500));

  double arma_se = 0.0, naive_se = 0.0;
  for (std::size_t t = 2500; t < 3000; ++t) {
    const auto hist = std::span<const double>(x).subspan(0, t);
    const double p = arma.predict_next(hist);
    arma_se += (p - x[t]) * (p - x[t]);
    naive_se += (x[t - 1] - x[t]) * (x[t - 1] - x[t]);
  }
  EXPECT_LT(arma_se, naive_se);
}

TEST(Arima, HandlesTrendViaDifferencing) {
  // Random walk with drift: ARIMA(1,1,0)-style models excel here.
  Rng rng(31);
  std::vector<double> x(1200);
  x[0] = 100.0;
  for (std::size_t i = 1; i < x.size(); ++i) x[i] = x[i - 1] + 2.0 + rng.normal(0.0, 0.5);
  ArimaPredictor arima(1, 1, 1);
  arima.fit(std::span<const double>(x).subspan(0, 1000));
  double se = 0.0, last_se = 0.0;
  for (std::size_t t = 1000; t < 1200; ++t) {
    const auto hist = std::span<const double>(x).subspan(0, t);
    const double p = arima.predict_next(hist);
    se += (p - x[t]) * (p - x[t]);
    last_se += (x[t - 1] - x[t]) * (x[t - 1] - x[t]);
  }
  // Knowing the drift beats the naive "same as yesterday" forecast.
  EXPECT_LT(se, last_se);
}

TEST(Arima, ShortHistoryFallsBackGracefully) {
  const std::vector<double> tiny{5.0, 6.0};
  ArimaPredictor arima(2, 1, 1);
  arima.fit(tiny);
  EXPECT_EQ(arima.predict_next(tiny), 6.0);
}

TEST(ArFamily, InvalidOrdersThrow) {
  EXPECT_THROW(ArPredictor(0), std::invalid_argument);
  EXPECT_THROW(ArmaPredictor(0, 0), std::invalid_argument);
}

// --- Walk-forward harness --------------------------------------------------

TEST(WalkForward, AlignsAndClamps) {
  std::vector<double> series = linear_series(30, 10.0, -1.0);  // descending, goes negative
  MeanPredictor mean(3);
  const auto preds = walk_forward(mean, series, 20);
  EXPECT_EQ(preds.size(), 10u);
  for (const double p : preds) EXPECT_GE(p, 0.0);  // clamped
  EXPECT_THROW((void)walk_forward(mean, series, 0), std::invalid_argument);
  EXPECT_THROW((void)walk_forward(mean, series, 30), std::invalid_argument);
}

TEST(WalkForward, RefitEveryTriggersRetraining) {
  // AR(1) on a structural-break series: refit must adapt.
  std::vector<double> series = constant_series(100, 10.0);
  for (std::size_t i = 50; i < 100; ++i) series[i] = 50.0;
  ArPredictor ar(1);
  WalkForwardOptions with_refit{.refit_every = 5};
  const auto adaptive = walk_forward(ar, series, 40, with_refit);
  ArPredictor ar2(1);
  const auto frozen = walk_forward(ar2, series, 40);
  // Adaptive forecasts must be at least as close on the post-break tail.
  double adaptive_err = 0.0, frozen_err = 0.0;
  for (std::size_t i = 20; i < 60; ++i) {
    adaptive_err += std::abs(adaptive[i] - series[40 + i]);
    frozen_err += std::abs(frozen[i] - series[40 + i]);
  }
  EXPECT_LE(adaptive_err, frozen_err + 1e-9);
}

// --- FFT ---------------------------------------------------------------------

TEST(Fft, InverseRoundTrip) {
  Rng rng(41);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (std::size_t i = 0; i < 64; ++i) {
    data[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    original[i] = data[i];
  }
  fft_inplace(data);
  fft_inplace(data, /*inverse=*/true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(43);
  std::vector<double> x(128);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const auto spectrum = fft_real(x);
  double time_energy = 0.0;
  for (const double v : x) time_energy += v * v;
  double freq_energy = 0.0;
  for (const auto& c : spectrum) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(spectrum.size()), time_energy, 1e-9);
}

class PeriodDetection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodDetection, FindsPlantedPeriod) {
  const std::size_t period = GetParam();
  const auto series = sine_series(512, static_cast<double>(period));
  const auto detected = detect_period(series);
  ASSERT_TRUE(detected.has_value());
  // FFT bin quantization: allow ~10% slack.
  EXPECT_NEAR(static_cast<double>(detected->period), static_cast<double>(period),
              0.1 * static_cast<double>(period) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodDetection, ::testing::Values(8u, 16u, 32u, 64u));

TEST(PeriodDetection, RejectsWhiteNoise) {
  Rng rng(47);
  std::vector<double> noise(512);
  for (double& v : noise) v = rng.normal(100.0, 10.0);
  EXPECT_FALSE(detect_period(noise).has_value());
}

TEST(PeriodDetection, RejectsTooShortSeries) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_FALSE(detect_period(tiny).has_value());
}

}  // namespace
