// Model persistence: lossless round-trip, format validation, corruption
// handling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>
#include <sstream>

#include "core/serialization.hpp"

namespace {

using namespace ld::core;

std::vector<double> seasonal_series(std::size_t n, double period) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        100.0 + 40.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

std::shared_ptr<TrainedModel> make_model() {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  ModelTrainingConfig training;
  training.trainer.max_epochs = 8;
  const Hyperparameters hp{.history_length = 16, .cell_size = 8, .num_layers = 2,
                           .batch_size = 32};
  return std::make_shared<TrainedModel>(all.subspan(0, 220), all.subspan(220), hp, training,
                                        17);
}

TEST(Serialization, RoundTripPreservesPredictionsExactly) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  const auto restored = load_model(stream);

  EXPECT_EQ(restored->hyperparameters(), model->hyperparameters());
  EXPECT_EQ(restored->validation_mape(), model->validation_mape());

  const auto series = seasonal_series(280, 16.0);
  for (std::size_t len : {40u, 100u, 280u}) {
    const std::span<const double> hist(series.data(), len);
    EXPECT_EQ(model->predict_next(hist), restored->predict_next(hist))
        << "hex-float round trip must be bit-exact (history length " << len << ")";
  }
}

TEST(Serialization, FileRoundTrip) {
  const auto model = make_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / "ld_model_test.ldm").string();
  save_model_file(*model, path);
  const auto restored = load_model_file(path);
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(model->predict_next(series), restored->predict_next(series));
  std::remove(path.c_str());
}

TEST(Serialization, GruCellRoundTripPreservesPredictionsExactly) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  ModelTrainingConfig training;
  training.trainer.max_epochs = 8;
  Hyperparameters hp{.history_length = 16, .cell_size = 8, .num_layers = 1,
                     .batch_size = 32};
  hp.cell = ld::nn::CellType::kGru;
  const TrainedModel model(all.subspan(0, 220), all.subspan(220), hp, training, 17);

  std::stringstream stream;
  save_model(model, stream);
  const auto restored = load_model(stream);
  EXPECT_EQ(restored->hyperparameters().cell, ld::nn::CellType::kGru);
  EXPECT_EQ(restored->hyperparameters(), model.hyperparameters());
  for (std::size_t len : {40u, 120u, 280u}) {
    const std::span<const double> hist(series.data(), len);
    EXPECT_EQ(model.predict_next(hist), restored->predict_next(hist))
        << "GRU round trip must be bit-exact (history length " << len << ")";
  }
}

TEST(Serialization, RejectsCorruptedHeaderKeyword) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  const auto pos = text.find("scaler ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "scalar");  // flip one header keyword
  std::stringstream corrupted(text);
  EXPECT_THROW((void)load_model(corrupted), std::runtime_error);
}

TEST(Serialization, RejectsWrongMagic) {
  std::stringstream stream("not-a-model 1\n");
  EXPECT_THROW((void)load_model(stream), std::runtime_error);
}

TEST(Serialization, RejectsUnsupportedVersion) {
  std::stringstream stream("loaddynamics-model 999\n");
  EXPECT_THROW((void)load_model(stream), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedWeights) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);  // chop the weight block
  std::stringstream truncated(text);
  EXPECT_THROW((void)load_model(truncated), std::runtime_error);
}

TEST(Serialization, RejectsMissingFile) {
  EXPECT_THROW((void)load_model_file("/nonexistent/model.ldm"), std::runtime_error);
}

TEST(Serialization, RestoreRejectsWeightSizeMismatch) {
  const auto model = make_model();
  ModelSnapshot snap = model->snapshot();
  snap.weights.pop_back();
  EXPECT_THROW((void)TrainedModel::restore(snap), std::invalid_argument);
}

}  // namespace
