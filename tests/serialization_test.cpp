// Model persistence: lossless round-trip, format validation, corruption
// handling (torn writes, bit flips, quarantine + previous-good fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <sstream>

#include "core/serialization.hpp"
#include "fault/injector.hpp"
#include "test_util.hpp"

namespace {

using namespace ld::core;

std::vector<double> seasonal_series(std::size_t n, double period) {
  return ld::testutil::seasonal_series(n, 100.0, 40.0, period);
}

std::shared_ptr<TrainedModel> make_model() {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  ModelTrainingConfig training;
  training.trainer.max_epochs = 8;
  const Hyperparameters hp{.history_length = 16, .cell_size = 8, .num_layers = 2,
                           .batch_size = 32};
  return std::make_shared<TrainedModel>(all.subspan(0, 220), all.subspan(220), hp, training,
                                        17);
}

TEST(Serialization, RoundTripPreservesPredictionsExactly) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  const auto restored = load_model(stream);

  EXPECT_EQ(restored->hyperparameters(), model->hyperparameters());
  EXPECT_EQ(restored->validation_mape(), model->validation_mape());

  const auto series = seasonal_series(280, 16.0);
  for (std::size_t len : {40u, 100u, 280u}) {
    const std::span<const double> hist(series.data(), len);
    EXPECT_EQ(model->predict_next(hist), restored->predict_next(hist))
        << "hex-float round trip must be bit-exact (history length " << len << ")";
  }
}

TEST(Serialization, FileRoundTrip) {
  const auto model = make_model();
  const ld::testutil::ScopedTempDir tmp("ser_file");
  const std::string path = tmp.file("m.ldm");
  save_model_file(*model, path);
  const auto restored = load_model_file(path);
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(model->predict_next(series), restored->predict_next(series));
}

TEST(Serialization, GruCellRoundTripPreservesPredictionsExactly) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  ModelTrainingConfig training;
  training.trainer.max_epochs = 8;
  Hyperparameters hp{.history_length = 16, .cell_size = 8, .num_layers = 1,
                     .batch_size = 32};
  hp.cell = ld::nn::CellType::kGru;
  const TrainedModel model(all.subspan(0, 220), all.subspan(220), hp, training, 17);

  std::stringstream stream;
  save_model(model, stream);
  const auto restored = load_model(stream);
  EXPECT_EQ(restored->hyperparameters().cell, ld::nn::CellType::kGru);
  EXPECT_EQ(restored->hyperparameters(), model.hyperparameters());
  for (std::size_t len : {40u, 120u, 280u}) {
    const std::span<const double> hist(series.data(), len);
    EXPECT_EQ(model.predict_next(hist), restored->predict_next(hist))
        << "GRU round trip must be bit-exact (history length " << len << ")";
  }
}

TEST(Serialization, RejectsCorruptedHeaderKeyword) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  const auto pos = text.find("scaler ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "scalar");  // flip one header keyword
  std::stringstream corrupted(text);
  EXPECT_THROW((void)load_model(corrupted), std::runtime_error);
}

TEST(Serialization, RejectsWrongMagic) {
  std::stringstream stream("not-a-model 1\n");
  EXPECT_THROW((void)load_model(stream), std::runtime_error);
}

TEST(Serialization, RejectsUnsupportedVersion) {
  std::stringstream stream("loaddynamics-model 999\n");
  EXPECT_THROW((void)load_model(stream), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedWeights) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);  // chop the weight block
  std::stringstream truncated(text);
  EXPECT_THROW((void)load_model(truncated), std::runtime_error);
}

TEST(Serialization, RejectsMissingFile) {
  EXPECT_THROW((void)load_model_file("/nonexistent/model.ldm"), std::runtime_error);
}

TEST(Serialization, RestoreRejectsWeightSizeMismatch) {
  const auto model = make_model();
  ModelSnapshot snap = model->snapshot();
  snap.weights.pop_back();
  EXPECT_THROW((void)TrainedModel::restore(snap), std::invalid_argument);
}

TEST(Serialization, SavedFileCarriesCrcFooter) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("\ncrc32 "), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Serialization, TornWriteFailsWithCrcErrorAtEveryEighth) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  const std::string text = stream.str();
  // A torn write can stop at any byte; probe every 1/8 boundary. Every cut
  // must fail cleanly, mentioning the crc (missing or mismatched footer) —
  // never parse garbage, never read past the buffer.
  for (std::size_t i = 1; i < 8; ++i) {
    const std::size_t cut = text.size() * i / 8;
    std::stringstream torn(text.substr(0, cut));
    try {
      (void)load_model(torn);
      FAIL() << "torn write at " << cut << "/" << text.size() << " bytes loaded";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("crc"), std::string::npos)
          << "cut at " << cut << " raised a non-crc error: " << e.what();
    }
  }
}

TEST(Serialization, BitFlipFailsWithCrcMismatch) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  // Flip one bit in the middle of the weight block.
  text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x08);
  std::stringstream corrupt(text);
  try {
    (void)load_model(corrupt);
    FAIL() << "bit-flipped file loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("crc32 mismatch"), std::string::npos) << e.what();
  }
}

TEST(Serialization, LegacyV1WithoutFooterStillLoads) {
  const auto model = make_model();
  std::stringstream stream;
  save_model(*model, stream);
  std::string text = stream.str();
  // Reconstruct what a pre-footer (version 1) file looked like.
  const std::size_t footer = text.rfind("\ncrc32 ");
  ASSERT_NE(footer, std::string::npos);
  text.resize(footer + 1);
  const std::size_t version = text.find(" 2\n");
  ASSERT_NE(version, std::string::npos);
  text.replace(version, 3, " 1\n");
  std::stringstream legacy(text);
  const auto restored = load_model(legacy);
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(model->predict_next(series), restored->predict_next(series));
}

TEST(Serialization, SaveKeepsPreviousGoodSnapshot) {
  const auto model = make_model();
  const ld::testutil::ScopedTempDir tmp("ser_prev");
  const std::string path = tmp.file("m.ldm");
  save_model_file(*model, path);
  save_model_file(*model, path);  // second save displaces the first to .prev
  EXPECT_TRUE(std::filesystem::exists(path + ".prev"));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(load_model_file(path + ".prev")->predict_next(series),
            model->predict_next(series));
}

TEST(Serialization, InjectedWriteFaultLeavesExistingCheckpointIntact) {
  const auto model = make_model();
  const ld::testutil::ScopedTempDir tmp("ser_fault");
  const std::string path = tmp.file("m.ldm");
  save_model_file(*model, path);

  ld::fault::Injector::instance().configure("checkpoint.write:p=1", 7);
  EXPECT_THROW(save_model_file(*model, path), ld::fault::FaultInjectedError);
  ld::fault::Injector::instance().reset();

  // The failed save must not have torn the existing checkpoint or leaked
  // its temp file.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(load_model_file(path)->predict_next(series), model->predict_next(series));
}

TEST(Serialization, LoadCheckpointQuarantinesCorruptAndFallsBack) {
  const auto model = make_model();
  const ld::testutil::ScopedTempDir tmp("ser_quarantine");
  const std::string path = tmp.file("m.ldm");
  save_model_file(*model, path);
  save_model_file(*model, path);  // leaves a good .prev
  {
    // Corrupt the primary the way a torn write would: chop it mid-weights.
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    text.resize(text.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  std::string loaded_from;
  const auto restored = load_checkpoint(path, &loaded_from);
  EXPECT_EQ(loaded_from, path + ".prev");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  EXPECT_FALSE(std::filesystem::exists(path));
  const auto series = seasonal_series(100, 16.0);
  EXPECT_EQ(restored->predict_next(series), model->predict_next(series));
}

TEST(Serialization, LoadCheckpointThrowsWhenNothingLoadable) {
  const ld::testutil::ScopedTempDir tmp("ser_nothing");
  EXPECT_THROW((void)load_checkpoint(tmp.file("m.ldm")), std::runtime_error);
}

}  // namespace
