// Network serving layer: binary frame codec (round-trip, truncation,
// hostile lengths), the TCP event-loop server end to end over a real socket
// (text + binary on one connection, admission-control shedding, QUIT,
// fault-site behavior), and shard determinism — the same workload set served
// with 1, 4, and 16 shards must produce bit-identical forecasts and
// identical retrain decisions. The TSan CI job runs this suite ("Net" is in
// its filter): the server thread, the client thread, and the service's
// dispatcher/drain tasks genuinely overlap here.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/registry.hpp"
#include "serving/protocol.hpp"
#include "serving/registry.hpp"
#include "serving/service.hpp"
#include "test_util.hpp"

namespace {

using namespace ld;

std::shared_ptr<core::TrainedModel> quick_model(std::span<const double> series,
                                                std::uint64_t seed = 7) {
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 6;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(series.subspan(0, n_train),
                                              series.subspan(n_train), hp, training, seed);
}

serving::ServiceConfig quick_service(bool background_retrain = false,
                                     std::size_t shards = 1) {
  serving::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.replicas = 2;
  cfg.background_retrain = background_retrain;
  cfg.adaptive.base.space = core::HyperparameterSpace::reduced();
  cfg.adaptive.base.space.history_max = 16;
  cfg.adaptive.base.space.cell_max = 12;
  cfg.adaptive.base.space.layers_max = 1;
  cfg.adaptive.base.training.trainer.max_epochs = 3;
  cfg.adaptive.refresh_candidates = 1;
  cfg.adaptive.retrain_history_cap = 120;
  cfg.adaptive.monitor_window = 16;
  return cfg;
}

// ---------------------------------------------------------------------------
// NetFrame: the codec alone, no sockets.

TEST(NetFrame, PredictRequestRoundTrip) {
  std::string bytes;
  net::append_predict_request(bytes, "wiki", 4);
  const net::Decoded decoded = net::decode_frame(bytes);
  ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(decoded.op, net::Op::kPredictReq);
  EXPECT_EQ(decoded.consumed, bytes.size());
  const net::PredictRequestPayload p = net::parse_predict_request(decoded.payload);
  EXPECT_EQ(p.workload, "wiki");
  EXPECT_EQ(p.horizon, 4u);
}

TEST(NetFrame, ObserveValuesAreBitExact) {
  // The whole point of the binary path: doubles survive the wire with their
  // exact bit patterns — including negative zero and NaN payload bits that a
  // decimal round trip could canonicalize away.
  const std::vector<double> values = {120.5, -0.0, 1e-308,
                                      std::nextafter(1.0, 2.0),
                                      std::numeric_limits<double>::quiet_NaN()};
  std::string bytes;
  net::append_observe_request(bytes, "az-vm-2017", values);
  const net::Decoded decoded = net::decode_frame(bytes);
  ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
  const net::ObserveRequestPayload p = net::parse_observe_request(decoded.payload);
  EXPECT_EQ(p.workload, "az-vm-2017");
  ASSERT_EQ(p.values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(p.values[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "value " << i << " changed bits in transit";
}

TEST(NetFrame, TruncatedFrameAsksForMoreBytes) {
  std::string bytes;
  net::append_predict_request(bytes, "wiki", 4);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const net::Decoded decoded = net::decode_frame(std::string_view(bytes).substr(0, cut));
    EXPECT_EQ(decoded.status, net::DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes must not decode";
  }
}

TEST(NetFrame, OversizedLengthIsRejectedNotBuffered) {
  std::string bytes;
  bytes.push_back(static_cast<char>(net::kFrameMagic));
  bytes.push_back(static_cast<char>(net::Op::kPredictReq));
  for (const char c : {'\xff', '\xff', '\xff', '\x7f'}) bytes.push_back(c);
  const net::Decoded decoded = net::decode_frame(bytes);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kBad)
      << "a 2 GiB length claim must be a protocol error, not an allocation";
}

TEST(NetFrame, BadMagicIsRejected) {
  const net::Decoded decoded = net::decode_frame("PREDICT wiki 4\n");
  EXPECT_EQ(decoded.status, net::DecodeStatus::kBad);
}

TEST(NetFrame, MalformedPayloadsThrowInvalidArgument) {
  std::string bytes;
  net::append_predict_request(bytes, "wiki", 4);
  const net::Decoded decoded = net::decode_frame(bytes);
  ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
  // Name length field claims more bytes than the payload holds.
  std::string corrupt = decoded.payload;
  corrupt[0] = '\xff';
  corrupt[1] = '\xff';
  EXPECT_THROW((void)net::parse_predict_request(corrupt), std::invalid_argument);
  // Trailing garbage after a well-formed payload is also malformed.
  EXPECT_THROW((void)net::parse_predict_request(decoded.payload + std::string("x")),
               std::invalid_argument);
  EXPECT_THROW((void)net::parse_observe_request(decoded.payload), std::invalid_argument);
}

TEST(NetFrame, StablePlacementAcrossProcesses) {
  // Pinned FNV-1a placements: if these move, shard-local artifacts (queues,
  // per-shard metrics) stop being comparable across runs and platforms.
  EXPECT_EQ(serving::workload_shard("wiki", 4), 1u);
  EXPECT_EQ(serving::workload_shard("wiki", 16), 1u);
  EXPECT_EQ(serving::workload_shard("az-vm-2017", 16), 5u);
  EXPECT_EQ(serving::workload_shard("golden", 16), 4u);
  EXPECT_EQ(serving::workload_shard("anything", 1), 0u);
}

// ---------------------------------------------------------------------------
// NetServer: a real socket against a live service.

class NetServerTest : public ::testing::Test {
 protected:
  /// The fixture owns the service so it reliably outlives the server thread
  /// (locals in the test body die before TearDown runs).
  serving::PredictionService& make_service(serving::ServiceConfig cfg = quick_service()) {
    service_ = std::make_unique<serving::PredictionService>(std::move(cfg));
    return *service_;
  }

  void start(net::ServerConfig config = {}) {
    config.port = 0;  // ephemeral
    server_ = std::make_unique<net::Server>(*service_, config);
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_) server_->stop();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    service_.reset();
    fault::Injector::instance().reset();
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  std::unique_ptr<serving::PredictionService> service_;
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

TEST_F(NetServerTest, TextAndBinaryShareOneConnection) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  start();

  net::Client client("127.0.0.1", port());
  // Text PREDICT on the socket == the same protocol over stdin.
  serving::LineProtocol protocol(service);
  std::ostringstream expected;
  ASSERT_TRUE(protocol.handle("PREDICT web 3", expected));
  std::string expected_line = expected.str();
  expected_line.pop_back();  // '\n'
  EXPECT_EQ(client.send_line("PREDICT web 3"), expected_line);

  // Binary PREDICT on the same connection, bit-exact against the service.
  const std::vector<double> direct = service.predict("web", 3);
  const net::Client::PredictReply reply = client.predict("web", 3);
  EXPECT_TRUE(reply.error.empty()) << reply.error;
  EXPECT_FALSE(reply.shed);
  ASSERT_EQ(reply.forecast.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reply.forecast[i]),
              std::bit_cast<std::uint64_t>(direct[i]));

  // Binary OBSERVE lands in the same history the text path feeds.
  const std::size_t before = service.stats("web").observations;
  const std::vector<double> more = {101.5, 99.25};
  const net::Client::ObserveReply observed = client.observe("web", more);
  EXPECT_TRUE(observed.error.empty()) << observed.error;
  EXPECT_EQ(observed.accepted, 2u);
  EXPECT_EQ(service.stats("web").observations, before + 2);

  // Errors come back in-band, per transport.
  EXPECT_EQ(client.send_line("PREDICT ghost 1").substr(0, 3), "ERR");
  EXPECT_FALSE(client.predict("ghost", 1).error.empty());

  // QUIT closes only this connection; the server keeps listening.
  EXPECT_EQ(client.send_line("QUIT"), "OK bye");
  net::Client again("127.0.0.1", port());
  EXPECT_EQ(again.send_line("WORKLOADS"), "WORKLOADS web");
}

TEST_F(NetServerTest, AdmissionControlShedsObserveBeforePredict) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  net::ServerConfig config;
  config.shed_observe_depth = 0;  // ingest always sheds...
  config.shed_predict_depth = 1u << 20;  // ...predictions never do
  start(config);

  const testutil::CounterDelta shed_observe("ld_shed_total", {{"verb", "BOBSERVE"}});
  const testutil::CounterDelta shed_text("ld_shed_total", {{"verb", "OBSERVE"}});
  net::Client client("127.0.0.1", port());

  const std::vector<double> more = {100.0};
  EXPECT_TRUE(client.observe("web", more).shed);
  EXPECT_EQ(client.send_line("OBSERVE web 100"), "503 SHED");
  EXPECT_EQ(shed_observe.delta(), 1u);
  EXPECT_EQ(shed_text.delta(), 1u);

  // The shed observations never reached the service...
  EXPECT_EQ(service.stats("web").observations, series.size());
  // ...but predictions still flow, and non-sheddable verbs are untouched.
  EXPECT_TRUE(client.predict("web", 2).error.empty());
  EXPECT_EQ(client.send_line("WORKLOADS"), "WORKLOADS web");
}

TEST_F(NetServerTest, NetReadFaultClosesConnectionGracefully) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  start();

  const testutil::CounterDelta read_errors("ld_net_read_errors_total");
  fault::Injector::instance().configure("net.read:n=1", /*seed=*/7);
  net::Client doomed("127.0.0.1", port());
  // The injected read failure kills this connection; the client observes a
  // close rather than a hung socket.
  EXPECT_THROW((void)doomed.send_line("WORKLOADS"), std::runtime_error);
  EXPECT_EQ(read_errors.delta(), 1u);

  // The server itself survives and keeps accepting.
  net::Client fresh("127.0.0.1", port());
  EXPECT_EQ(fresh.send_line("WORKLOADS"), "WORKLOADS web");
}

TEST_F(NetServerTest, IdleConnectionsAreReaped) {
  make_service();
  net::ServerConfig config;
  config.idle_timeout_seconds = 0.2;
  start(config);

  const testutil::CounterDelta idle_closed("ld_net_idle_closed_total");
  net::Client client("127.0.0.1", port(), /*timeout_seconds=*/5.0);
  // Do nothing: the server must reap the connection, not wait forever.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    if (idle_closed.delta() > 0) closed = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(closed) << "idle connection was never reaped";
}

TEST_F(NetServerTest, NetWriteShortWriteResumesFlush) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  start();

  const testutil::CounterDelta short_writes("ld_net_short_writes_total");
  fault::Injector::instance().configure("net.write:n=1", /*seed=*/7);
  net::Client client("127.0.0.1", port());
  // The injected 1-byte short write must not lose or reorder response bytes:
  // the flush path re-arms write interest and resumes where it left off.
  const std::string response = client.send_line("PREDICT web 3");
  EXPECT_EQ(response.rfind("PRED web ", 0), 0u) << response;
  EXPECT_EQ(short_writes.delta(), 1u);
  // The connection survives the drill.
  EXPECT_EQ(client.send_line("WORKLOADS"), "WORKLOADS web");
}

// ---------------------------------------------------------------------------
// NetSlowClient: per-connection resource bounds.

/// Raw socket: net::Client always sends complete requests, these tests
/// need to misbehave (unbounded bytes, no newlines, partial lines).
class RawConn {
 public:
  RawConn(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("RawConn: connect failed");
  }
  ~RawConn() { close(); }

  void send_bytes(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ::ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
      if (n <= 0) break;  // server already disconnected us — that's fine
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Block until the server closes (recv returns 0) or `seconds` elapse.
  bool wait_closed(double seconds) {
    timeval tv{};
    tv.tv_sec = static_cast<long>(seconds);
    tv.tv_usec = static_cast<long>((seconds - tv.tv_sec) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[4096];
    for (;;) {
      const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

TEST_F(NetServerTest, OverlongHttpRequestLineDisconnects) {
  make_service();
  net::ServerConfig config;
  config.max_http_line_bytes = 128;
  start(config);

  const testutil::CounterDelta overlong("ld_net_overlong_disconnects_total");
  RawConn hostile("127.0.0.1", port());
  hostile.send_bytes("GET /" + std::string(4096, 'a') + " HTTP/1.0\r\n");
  EXPECT_TRUE(hostile.wait_closed(5.0)) << "over-long request line must disconnect";
  EXPECT_EQ(overlong.delta(), 1u);
  // The server itself keeps serving well-behaved clients.
  net::Client fresh("127.0.0.1", port());
  EXPECT_EQ(fresh.http_get("/healthz").rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
}

TEST_F(NetServerTest, ConnectionBufferCapDisconnectsFloodingClient) {
  make_service();
  net::ServerConfig config;
  config.max_conn_buffer_bytes = 1024;
  config.max_line_bytes = 1u << 20;  // the line cap must not trip first
  start(config);

  const testutil::CounterDelta overlong("ld_net_overlong_disconnects_total");
  RawConn flooder("127.0.0.1", port());
  // Newline-free flood: never a complete request, so only the buffer cap can
  // stop the growth.
  flooder.send_bytes(std::string(64 * 1024, 'x'));
  EXPECT_TRUE(flooder.wait_closed(5.0)) << "buffer-capped client must be disconnected";
  EXPECT_GE(overlong.delta(), 1u);
  net::Client fresh("127.0.0.1", port());
  EXPECT_EQ(fresh.send_line("WORKLOADS"), "WORKLOADS");
}

// ---------------------------------------------------------------------------
// NetDrain: the SIGTERM half of the durability story.

TEST_F(NetServerTest, DrainAnswers503ThenExitsWhenConnectionsQuiesce) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  net::ServerConfig config;
  config.port = 0;
  config.drain_deadline_seconds = 30.0;  // the test exits via quiescence, not deadline
  server_ = std::make_unique<net::Server>(*service_, config);
  std::atomic<bool> exited{false};
  std::thread loop([&] {
    server_->run();
    exited.store(true, std::memory_order_release);
  });

  // A connection parked mid-line is non-quiescent: the server owes it the
  // rest of the request, so drain must wait for it.
  RawConn parked("127.0.0.1", port());
  parked.send_bytes("STA");  // no newline
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let the server read it

  server_->drain();
  EXPECT_TRUE(server_->draining());

  // Readiness flips on fresh connections — the listen socket stays open so
  // load balancers can observe the drain.
  {
    net::Client probe("127.0.0.1", port());
    const std::string response = probe.http_get("/healthz");
    EXPECT_EQ(response.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u) << response;
    const std::size_t at = response.find("\r\n\r\n");
    ASSERT_NE(at, std::string::npos);
    EXPECT_EQ(response.substr(at + 4), "draining\n");
  }
  // Data-plane work sheds at the door while draining.
  {
    net::Client shed_probe("127.0.0.1", port());
    EXPECT_EQ(shed_probe.send_line("OBSERVE web 100"), "503 SHED");
    EXPECT_EQ(shed_probe.send_line("PREDICT web 2"), "503 SHED");
  }
  EXPECT_FALSE(exited.load(std::memory_order_acquire))
      << "the parked connection must hold the drain open";

  // Releasing the last connection lets run() return without stop().
  parked.close();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!exited.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(exited.load(std::memory_order_acquire)) << "drain never completed";
  loop.join();
}

TEST_F(NetServerTest, DrainDeadlineForcesExit) {
  make_service();
  net::ServerConfig config;
  config.port = 0;
  config.drain_deadline_seconds = 0.3;
  server_ = std::make_unique<net::Server>(*service_, config);
  std::atomic<bool> exited{false};
  std::thread loop([&] {
    server_->run();
    exited.store(true, std::memory_order_release);
  });

  RawConn stuck("127.0.0.1", port());
  stuck.send_bytes("STA");  // never completes; holds the drain at the deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->drain();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!exited.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(exited.load(std::memory_order_acquire))
      << "the drain deadline must bound a stuck client";
  loop.join();
}

// ---------------------------------------------------------------------------
// NetHttp: the ops plane multiplexed onto the same listener.

namespace {
/// Body of a close-delimited HTTP response (everything after the blank line).
std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}
}  // namespace

TEST_F(NetServerTest, HttpOpsPlaneEndpoints) {
  serving::PredictionService& service = make_service(quick_service(false, /*shards=*/4));
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  (void)service.predict("web", 2);
  start();

  // Each GET uses a fresh connection: the server answers and closes (HTTP/1.0
  // close-delimited), while protocol connections on the same port live on.
  {
    net::Client health("127.0.0.1", port());
    const std::string response = health.http_get("/healthz");
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
    EXPECT_EQ(http_body(response), "ok\n");
  }
  {
    net::Client metrics("127.0.0.1", port());
    const std::string response = metrics.http_get("/metrics");
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
    EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    const std::string body = http_body(response);
    EXPECT_NE(body.find("# TYPE ld_net_connections_open gauge"), std::string::npos);
    EXPECT_NE(body.find("ld_net_requests_total{transport=\"http\"}"),
              std::string::npos);
  }
  {
    net::Client statusz("127.0.0.1", port());
    const std::string body = http_body(statusz.http_get("/statusz"));
    EXPECT_EQ(body.front(), '{');
    // Single-line JSON: one trailing newline, none inside.
    EXPECT_EQ(body.find('\n'), body.size() - 1) << body;
    for (const char* key :
         {"\"connections\":", "\"pending_requests\":", "\"conn_buffer_bytes\":",
          "\"epoll_wakeups\":", "\"shard_queue_depths\":[", "\"degradation\":{",
          "\"live\":", "\"slo\":{", "\"predict_p99\":", "\"shed_rate\":",
          "\"series\":{"})
      EXPECT_NE(body.find(key), std::string::npos) << "missing " << key << " in " << body;
  }
  {
    net::Client missing("127.0.0.1", port());
    const std::string response = missing.http_get("/nope");
    EXPECT_EQ(response.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << response;
  }
  // The text protocol is unaffected by interleaved HTTP connections.
  net::Client text("127.0.0.1", port());
  EXPECT_EQ(text.send_line("WORKLOADS"), "WORKLOADS web");
}

TEST_F(NetServerTest, HttpBypassesAdmissionControl) {
  serving::PredictionService& service = make_service();
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  net::ServerConfig config;
  config.shed_observe_depth = 0;  // everything sheddable sheds...
  config.shed_predict_depth = 0;
  start(config);

  net::Client shed_probe("127.0.0.1", port());
  EXPECT_EQ(shed_probe.send_line("OBSERVE web 100"), "503 SHED");
  // ...but the ops plane must keep answering, or overload is unobservable.
  net::Client ops("127.0.0.1", port());
  const std::string response = ops.http_get("/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(http_body(response).find("ld_shed_total"), std::string::npos);
}

TEST_F(NetServerTest, ConcurrentHttpScrapeDuringRetrain) {
  // TSan coverage (this suite is in the CI tsan filter): HTTP scrapes — which
  // run the governor rebalance and SLO publish hooks — race live predict,
  // observe, and background-retrain traffic on the data plane.
  testutil::reset_metrics();
  obs::MetricsRegistry::global().set_max_series(200);
  serving::PredictionService& service =
      make_service(quick_service(/*background_retrain=*/true, /*shards=*/2));
  const std::vector<double> series = testutil::seasonal_series(96);
  for (const char* name : {"web", "db"}) {
    service.publish(name, *quick_model(series));
    service.observe_many(name, series);
  }
  start();

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      net::Client client("127.0.0.1", port());
      const std::string response = client.http_get("/metrics");
      EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
    }
  });
  std::thread statusz([&] {
    while (!done.load(std::memory_order_relaxed)) {
      net::Client client("127.0.0.1", port());
      EXPECT_NE(client.http_get("/statusz").find("\"slo\""), std::string::npos);
    }
  });
  net::Client traffic("127.0.0.1", port());
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(traffic.predict("web", 2).error.empty());
    EXPECT_TRUE(traffic.observe("db", std::vector<double>{100.0 + i}).error.empty());
    if (i == 10) (void)service.request_retrain("web");
  }
  service.wait_idle();
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  statusz.join();
  obs::MetricsRegistry::global().set_max_series(0);  // don't govern later tests
}

// ---------------------------------------------------------------------------
// NetShardDeterminism: sharding must be invisible in the outputs.

TEST(NetShardDeterminism, ForecastsAndRetrainsIdenticalAcrossShardCounts) {
  const std::vector<std::string> names = {"wiki", "az-vm-2017", "gcd-job"};
  const std::vector<double> base = testutil::seasonal_series(96);
  // A level shift big enough to trip the drift monitor identically wherever
  // the workload lands.
  std::vector<double> shifted = testutil::seasonal_series(48, 160.0, 12.0);

  struct Outcome {
    std::vector<std::vector<double>> forecasts;
    std::vector<std::uint64_t> versions;
    std::vector<std::size_t> retrains;
    std::string workloads_line;              ///< raw WORKLOADS reply
    std::vector<std::string> stats_lines;    ///< fleet STATS, shard= stripped, sorted
    std::string stats_summary_prefix;        ///< "OK stats N workloads"
  };
  const auto run = [&](std::size_t shards) {
    serving::PredictionService service(quick_service(/*background_retrain=*/true, shards));
    EXPECT_EQ(service.shard_count(), shards);
    for (std::size_t i = 0; i < names.size(); ++i)
      service.publish(names[i], *quick_model(base, /*seed=*/7 + i));
    for (const std::string& name : names) service.observe_many(name, base);
    for (const std::string& name : names) service.observe_many(name, shifted);
    service.wait_idle();
    Outcome out;
    for (const std::string& name : names) {
      out.forecasts.push_back(service.predict(name, 4));
      const serving::WorkloadStats s = service.stats(name);
      out.versions.push_back(s.version);
      out.retrains.push_back(s.retrains);
    }
    // Protocol surfaces that iterate the registries: WORKLOADS must be
    // byte-identical whatever the shard count (the k-way merge over
    // name-sorted per-shard runs — the PR 10 trie iterates in hash order
    // internally, and this is the test that it never leaks out). Fleet
    // STATS is per-shard streamed, so shard placement legitimately reorders
    // lines and stamps shard=; normalize exactly those two artifacts and
    // the rest must match byte-for-byte.
    serving::LineProtocol protocol(service);
    std::ostringstream workloads_out;
    EXPECT_TRUE(protocol.handle("WORKLOADS", workloads_out));
    out.workloads_line = workloads_out.str();
    std::ostringstream stats_out;
    EXPECT_TRUE(protocol.handle("STATS", stats_out));
    std::istringstream stats_lines(stats_out.str());
    std::string line;
    while (std::getline(stats_lines, line)) {
      if (line.rfind("STATS ", 0) == 0) {
        const std::size_t shard_at = line.rfind(" shard=");
        EXPECT_NE(shard_at, std::string::npos) << line;
        out.stats_lines.push_back(line.substr(0, shard_at));
      } else if (line.rfind("OK stats ", 0) == 0) {
        out.stats_summary_prefix = line.substr(0, line.find(" workloads") + 10);
      }
    }
    std::sort(out.stats_lines.begin(), out.stats_lines.end());
    return out;
  };

  const Outcome one = run(1);
  EXPECT_EQ(one.workloads_line, "WORKLOADS az-vm-2017 gcd-job wiki\n");
  EXPECT_EQ(one.stats_lines.size(), names.size());
  EXPECT_EQ(one.stats_summary_prefix, "OK stats 3 workloads");
  for (const std::size_t shards : {std::size_t{4}, std::size_t{16}}) {
    const Outcome sharded = run(shards);
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(sharded.retrains[i], one.retrains[i])
          << names[i] << " made a different retrain decision with " << shards << " shards";
      EXPECT_EQ(sharded.versions[i], one.versions[i]) << names[i];
      ASSERT_EQ(sharded.forecasts[i].size(), one.forecasts[i].size());
      for (std::size_t k = 0; k < one.forecasts[i].size(); ++k)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sharded.forecasts[i][k]),
                  std::bit_cast<std::uint64_t>(one.forecasts[i][k]))
            << names[i] << " forecast[" << k << "] differs with " << shards << " shards";
    }
    EXPECT_EQ(sharded.workloads_line, one.workloads_line)
        << "WORKLOADS must stay byte-identical with " << shards << " shards";
    EXPECT_EQ(sharded.stats_lines, one.stats_lines)
        << "fleet STATS per-workload fields drifted with " << shards << " shards";
    EXPECT_EQ(sharded.stats_summary_prefix, one.stats_summary_prefix);
  }
}

TEST(NetShardDeterminism, RegistryMergesShardsSorted) {
  serving::ModelRegistry registry(8);
  const std::vector<double> series = testutil::seasonal_series(64);
  const auto model = quick_model(series);
  const std::vector<std::string> names = {"zeta", "alpha", "mid", "wiki", "az-vm-2017"};
  std::uint64_t version = 1;
  for (const std::string& name : names)
    registry.publish(name, serving::PublishedModel::make(*model, version++, 1));
  std::vector<std::string> expected = names;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(registry.names(), expected);
  EXPECT_EQ(registry.size(), names.size());
  std::size_t across = 0;
  for (std::size_t shard = 0; shard < registry.shard_count(); ++shard)
    across += registry.shard_size(shard);
  EXPECT_EQ(across, names.size());
}

TEST(NetShardDeterminism, PriorityOrdersRetrainQueueBySeverityTimesTraffic) {
  // White-box check of the queue policy via the fleet STATS shard column and
  // manual retrains is overkill; instead assert the job comparator directly
  // through the protocol-visible effect: a manual retrain on an idle service
  // still drains (the dispatcher path), and double-requesting dedups.
  serving::PredictionService service(quick_service());
  const std::vector<double> series = testutil::seasonal_series(96);
  service.publish("web", *quick_model(series));
  service.observe_many("web", series);
  EXPECT_TRUE(service.request_retrain("web"));
  EXPECT_FALSE(service.request_retrain("web")) << "pending retrain must dedup";
  service.wait_idle();
  EXPECT_EQ(service.stats("web").retrains, 1u);
  EXPECT_FALSE(service.stats("web").retrain_pending);
}

// ---------------------------------------------------------------------------
// NetProtocol: the new fleet STATS form (streamed shard-by-shard).

TEST(NetProtocol, FleetStatsStreamsEveryShard) {
  serving::PredictionService service(quick_service(false, /*shards=*/4));
  const std::vector<double> series = testutil::seasonal_series(96);
  for (const char* name : {"wiki", "az-vm-2017", "gcd-job"}) {
    service.publish(name, *quick_model(series));
    service.observe_many(name, series);
  }
  serving::LineProtocol protocol(service);
  std::ostringstream out;
  ASSERT_TRUE(protocol.handle("STATS", out));
  std::istringstream lines(out.str());
  std::string line;
  std::size_t stats_lines = 0;
  std::string last;
  while (std::getline(lines, line)) {
    if (line.rfind("STATS ", 0) == 0) {
      ++stats_lines;
      EXPECT_NE(line.find(" shard="), std::string::npos) << line;
    }
    last = line;
  }
  EXPECT_EQ(stats_lines, 3u);
  // The summary line grew SLO burn-rate fields; the historical prefix is
  // still pinned so deployed prefix-matching clients keep working.
  EXPECT_EQ(last.rfind("OK stats 3 workloads 4 shards", 0), 0u) << last;
  EXPECT_NE(last.find(" predict_burn="), std::string::npos) << last;
  EXPECT_NE(last.find(" shed_burn="), std::string::npos) << last;

  // The single-tenant form is unchanged (golden-gate surface): no shard=.
  std::ostringstream single;
  ASSERT_TRUE(protocol.handle("STATS wiki", single));
  EXPECT_EQ(single.str().rfind("STATS wiki version=", 0), 0u) << single.str();
  EXPECT_EQ(single.str().find(" shard="), std::string::npos);
}

TEST(NetProtocol, FleetPredictLatencyMergesShards) {
  // The shard histograms are process-global registry instruments; clear any
  // samples earlier tests in this binary recorded under the same labels.
  testutil::reset_metrics();
  serving::PredictionService service(quick_service(false, /*shards=*/4));
  const std::vector<double> series = testutil::seasonal_series(96);
  for (const char* name : {"wiki", "az-vm-2017", "gcd-job"}) {
    service.publish(name, *quick_model(series));
    service.observe_many(name, series);
    (void)service.predict(name, 2);
  }
  const metrics::LatencyHistogram fleet = service.fleet_predict_latency();
  EXPECT_EQ(fleet.count(), 3u) << "one predict per workload must aggregate across shards";
  EXPECT_GT(fleet.percentile(99.0), 0.0);
}

}  // namespace
