// The degradation fallback chain under concurrent load *and* fault
// injection: predictors, observers (with poisoned samples) and a failing
// background retrain all hammer one workload, and the STATS counters must
// come out exactly consistent with what each thread saw.
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "core/model.hpp"
#include "fault/injector.hpp"
#include "serving/service.hpp"
#include "test_util.hpp"

namespace {

using namespace ld;

class FaultConcurrent : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::instance().reset();
    log::set_level(log::Level::kError);  // degraded/reject warns are the point
  }
  void TearDown() override {
    fault::Injector::instance().reset();
    log::set_level(log::Level::kInfo);
  }
};

std::shared_ptr<core::TrainedModel> tiny_model(std::uint64_t seed) {
  const std::vector<double> series = testutil::seasonal_series(140, 100.0, 12.0, 24.0, seed);
  core::Hyperparameters hp;
  hp.history_length = 6;
  hp.cell_size = 4;
  hp.num_layers = 1;
  hp.batch_size = 8;
  core::ModelTrainingConfig config;
  config.trainer.max_epochs = 3;
  return std::make_shared<core::TrainedModel>(
      std::span<const double>(series.data(), 100),
      std::span<const double>(series.data() + 100, 40), hp, config, seed);
}

TEST_F(FaultConcurrent, SnapshotFallbackStaysConsistentUnderConcurrentRetrain) {
  serving::ServiceConfig config;
  config.background_retrain = false;
  config.retrain_retry.max_attempts = 1;
  serving::PredictionService service(config);

  // Two publishes: the second model is "current", the first survives as the
  // last-known-good snapshot the fallback chain reaches for.
  service.publish("web", *tiny_model(21));
  service.publish("web", *tiny_model(22));
  service.observe_many("web", testutil::seasonal_series(64, 100.0, 12.0, 24.0, 3));

  const testutil::CounterDelta degraded("ld_degraded_predictions_total",
                                        {{"workload", "web"}});
  const testutil::CounterDelta failures("ld_serving_retrain_failures_total",
                                        {{"workload", "web"}});
  const serving::WorkloadStats before = service.stats("web");

  // Every live forecast is corrupted; the retrain attempt dies immediately.
  fault::Injector::instance().configure("predict.nan:p=1,retrain.fail:p=1", 5);

  constexpr int kPredictors = 4, kPredictsEach = 25;
  constexpr int kObservers = 2, kObservesEach = 30, kBadEach = 5;
  std::vector<serving::PredictResult> results(kPredictors * kPredictsEach);
  std::vector<std::thread> threads;
  threads.reserve(kPredictors + kObservers);
  for (int p = 0; p < kPredictors; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPredictsEach; ++i)
        results[static_cast<std::size_t>(p * kPredictsEach + i)] =
            service.predict_detailed("web", 3);
    });
  for (int o = 0; o < kObservers; ++o)
    threads.emplace_back([&, o] {
      for (int i = 0; i < kObservesEach; ++i)
        service.observe("web", 100.0 + (o * kObservesEach + i) % 7);
      for (int i = 0; i < kBadEach; ++i)
        service.observe("web", i % 2 == 0 ? std::nan("") : -5.0);
    });
  EXPECT_TRUE(service.request_retrain("web"));
  for (auto& t : threads) t.join();
  service.wait_idle();

  // Every forecast came from the snapshot fallback, finite and full-length.
  std::size_t snapshot_level = 0;
  for (const auto& r : results) {
    ASSERT_EQ(r.forecast.size(), 3u);
    for (const double v : r.forecast) EXPECT_TRUE(std::isfinite(v));
    EXPECT_NE(r.level, fault::DegradationLevel::kLive);
    if (r.level == fault::DegradationLevel::kSnapshot) ++snapshot_level;
  }
  EXPECT_EQ(snapshot_level, results.size())
      << "last-good model is healthy, so nothing should fall through to baseline";

  const serving::WorkloadStats stats = service.stats("web");
  EXPECT_EQ(stats.predictions - before.predictions, results.size());
  EXPECT_EQ(stats.degraded - before.degraded, results.size());
  EXPECT_EQ(stats.rejected - before.rejected,
            static_cast<std::size_t>(kObservers * kBadEach));
  EXPECT_EQ(stats.retrain_failures - before.retrain_failures, 1u);
  EXPECT_EQ(stats.version, before.version) << "a failed retrain must not publish";
  EXPECT_EQ(stats.last_level, fault::DegradationLevel::kSnapshot);

  // Registry counters moved in lockstep with the per-workload stats.
  EXPECT_EQ(degraded.delta(), results.size());
  EXPECT_EQ(failures.delta(), 1u);

  // Clearing the faults restores live serving immediately.
  fault::Injector::instance().reset();
  const auto healthy = service.predict_detailed("web", 2);
  EXPECT_EQ(healthy.level, fault::DegradationLevel::kLive);
  EXPECT_EQ(service.stats("web").last_level, fault::DegradationLevel::kLive);
}

TEST_F(FaultConcurrent, BaselineFallbackWhenNoSnapshotExists) {
  serving::ServiceConfig config;
  config.background_retrain = false;
  serving::PredictionService service(config);
  service.publish("solo", *tiny_model(33));  // one publish: no last-good yet
  service.observe_many("solo", testutil::seasonal_series(48, 100.0, 12.0, 24.0, 3));

  fault::Injector::instance().configure("predict.nan:p=1", 5);
  std::vector<serving::PredictResult> results(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i)
        results[static_cast<std::size_t>(t * 4 + i)] = service.predict_detailed("solo", 4);
    });
  for (auto& t : threads) t.join();

  for (const auto& r : results) {
    EXPECT_EQ(r.level, fault::DegradationLevel::kBaseline);
    EXPECT_EQ(r.version, 0u) << "baseline answers carry no model version";
    ASSERT_EQ(r.forecast.size(), 4u);
    for (const double v : r.forecast) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(service.stats("solo").degraded, results.size());
}

}  // namespace
