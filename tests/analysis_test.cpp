// Analysis utilities: bootstrap confidence intervals, paired comparisons,
// seasonal Holt-Winters, and changepoint detection.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/bootstrap.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "timeseries/changepoint.hpp"
#include "timeseries/holtwinters.hpp"

namespace {

using namespace ld;

// --- Bootstrap ----------------------------------------------------------------

TEST(Bootstrap, CiContainsPointEstimate) {
  Rng rng(3);
  std::vector<double> actual(200), predicted(200);
  for (std::size_t i = 0; i < 200; ++i) {
    actual[i] = rng.uniform(50.0, 150.0);
    predicted[i] = actual[i] * rng.uniform(0.8, 1.2);
  }
  const auto ci = stats::bootstrap_mape(actual, predicted);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.upper, ci.lower);
}

TEST(Bootstrap, CiShrinksWithMoreData) {
  Rng rng(5);
  auto make = [&](std::size_t n) {
    std::vector<double> actual(n), predicted(n);
    for (std::size_t i = 0; i < n; ++i) {
      actual[i] = rng.uniform(50.0, 150.0);
      predicted[i] = actual[i] * rng.uniform(0.85, 1.15);
    }
    const auto ci = stats::bootstrap_mape(actual, predicted, 1000, 0.95, 7);
    return ci.upper - ci.lower;
  };
  EXPECT_LT(make(2000), make(50));
}

TEST(Bootstrap, PerfectPredictionGivesDegenerateCi) {
  const std::vector<double> actual{10.0, 20.0, 30.0, 40.0};
  const auto ci = stats::bootstrap_mape(actual, actual);
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 0.0);
}

TEST(Bootstrap, PairedComparisonDetectsClearWinner) {
  Rng rng(7);
  std::vector<double> actual(300), good(300), bad(300);
  for (std::size_t i = 0; i < 300; ++i) {
    actual[i] = rng.uniform(80.0, 120.0);
    good[i] = actual[i] * rng.uniform(0.97, 1.03);  // ~1.5% error
    bad[i] = actual[i] * rng.uniform(0.7, 1.3);     // ~15% error
  }
  const auto cmp = stats::paired_bootstrap(actual, good, bad);
  EXPECT_LT(cmp.mape_a, cmp.mape_b);
  EXPECT_GT(cmp.prob_a_better, 0.99);
}

TEST(Bootstrap, PairedComparisonOfEqualsIsAmbivalent) {
  Rng rng(9);
  std::vector<double> actual(300), a(300), b(300);
  for (std::size_t i = 0; i < 300; ++i) {
    actual[i] = rng.uniform(80.0, 120.0);
    a[i] = actual[i] * rng.uniform(0.9, 1.1);
    b[i] = actual[i] * rng.uniform(0.9, 1.1);
  }
  const auto cmp = stats::paired_bootstrap(actual, a, b);
  EXPECT_GT(cmp.prob_a_better, 0.05);
  EXPECT_LT(cmp.prob_a_better, 0.95);
}

TEST(Bootstrap, InputValidation) {
  const std::vector<double> a{1.0}, b{1.0, 2.0}, empty;
  EXPECT_THROW((void)stats::bootstrap_mape(a, b), std::invalid_argument);
  EXPECT_THROW((void)stats::bootstrap_mape(empty, empty), std::invalid_argument);
  EXPECT_THROW((void)stats::bootstrap_mape(a, a, 100, 1.5), std::invalid_argument);
}

// --- Seasonal Holt-Winters -----------------------------------------------------

TEST(HoltWinters, BeatsNonSeasonalHoltOnSeasonalData) {
  std::vector<double> series(400);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 100.0 + 0.1 * static_cast<double>(i) +
                30.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0);

  ts::HoltWintersPredictor hw({.period = 24});
  hw.fit(std::span<const double>(series).subspan(0, 320));

  double hw_se = 0.0, naive_se = 0.0;
  for (std::size_t t = 320; t < 400; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    const double p = hw.predict_next(hist);
    hw_se += (p - series[t]) * (p - series[t]);
    naive_se += (series[t - 1] - series[t]) * (series[t - 1] - series[t]);
  }
  EXPECT_LT(hw_se, naive_se * 0.2)
      << "seasonal HW should crush naive persistence on a seasonal+trend signal";
}

TEST(HoltWinters, AutoDetectsPeriod) {
  std::vector<double> series(512);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] =
        50.0 + 20.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 32.0);
  ts::HoltWintersPredictor hw;  // period = 0 -> auto
  hw.fit(series);
  EXPECT_NEAR(static_cast<double>(hw.period()), 32.0, 4.0);
}

TEST(HoltWinters, FallsBackToHoltWithoutSeasonality) {
  // Pure line: no period; forecast must continue the trend.
  std::vector<double> series(100);
  for (std::size_t i = 0; i < series.size(); ++i) series[i] = 5.0 + 2.0 * static_cast<double>(i);
  ts::HoltWintersPredictor hw;
  hw.fit(series);
  EXPECT_EQ(hw.period(), 0u);
  EXPECT_NEAR(hw.predict_next(series), 5.0 + 2.0 * 100.0, 5.0);
}

TEST(HoltWinters, InvalidConfigThrows) {
  EXPECT_THROW(ts::HoltWintersPredictor({.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(ts::HoltWintersPredictor({.gamma = 1.5}), std::invalid_argument);
}

// --- Changepoint detection ------------------------------------------------------

TEST(Changepoint, FindsSingleMeanShift) {
  Rng rng(11);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < 200; ++i)
    x[i] = (i < 120 ? 10.0 : 30.0) + rng.normal(0.0, 1.0);
  const auto points = ts::detect_changepoints(x);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(static_cast<double>(points[0]), 120.0, 4.0);
}

TEST(Changepoint, FindsMultipleShifts) {
  Rng rng(13);
  std::vector<double> x(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const double level = i < 100 ? 10.0 : i < 200 ? 40.0 : 20.0;
    x[i] = level + rng.normal(0.0, 1.5);
  }
  const auto points = ts::detect_changepoints(x);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(static_cast<double>(points[0]), 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(points[1]), 200.0, 5.0);
}

TEST(Changepoint, QuietOnHomogeneousNoise) {
  Rng rng(17);
  std::vector<double> x(300);
  for (double& v : x) v = rng.normal(50.0, 5.0);
  EXPECT_TRUE(ts::detect_changepoints(x).empty());
}

TEST(Changepoint, RecentChangeDetector) {
  Rng rng(19);
  std::vector<double> x(200);
  for (std::size_t i = 0; i < 200; ++i)
    x[i] = (i < 180 ? 10.0 : 60.0) + rng.normal(0.0, 1.0);
  EXPECT_TRUE(ts::recent_changepoint(x, 40));
  EXPECT_FALSE(ts::recent_changepoint(std::span<const double>(x).subspan(0, 150), 40));
}

TEST(Changepoint, ShortSeriesSafe) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_TRUE(ts::detect_changepoints(tiny).empty());
  ts::ChangepointConfig bad;
  bad.min_segment = 1;
  EXPECT_THROW((void)ts::detect_changepoints(tiny, bad), std::invalid_argument);
}

}  // namespace
