// Exactness of the analytic BPTT gradients: every parameter of every layer
// type is checked against central finite differences. This is the test that
// guarantees the from-scratch LSTM is the model of Fig. 4.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "nn/dense.hpp"
#include "nn/lstm_layer.hpp"
#include "nn/network.hpp"

namespace {

using ld::Rng;
using ld::nn::LstmNetwork;
using ld::nn::LstmNetworkConfig;
using ld::tensor::Matrix;

// Loss: 0.5 * sum(pred^2) so dL/dpred = pred; simple and sensitive.
double loss_of(LstmNetwork& net, const Matrix& x) {
  const std::vector<double> out = net.forward(x);
  double loss = 0.0;
  for (const double v : out) loss += 0.5 * v * v;
  return loss;
}

struct GradCheckCase {
  std::size_t hidden;
  std::size_t layers;
  std::size_t batch;
  std::size_t steps;
};

class LstmGradCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(LstmGradCheck, AnalyticMatchesFiniteDifference) {
  const GradCheckCase param = GetParam();
  LstmNetwork net({.input_size = 1, .hidden_size = param.hidden, .num_layers = param.layers},
                  /*seed=*/99);

  Rng rng(1234);
  Matrix x(param.batch, param.steps);
  for (double& v : x.flat()) v = rng.uniform(-1.0, 1.0);

  // Analytic gradients.
  const std::vector<double> out = net.forward(x);
  std::vector<double> dy(out);  // dL/dy = y for the quadratic loss
  net.zero_grad();
  net.backward(dy);

  auto params = net.parameters();
  auto grads = net.gradients();
  ASSERT_EQ(params.size(), grads.size());

  const double eps = 1e-5;
  std::size_t checked = 0;
  for (std::size_t s = 0; s < params.size(); ++s) {
    // Spot-check a few entries per tensor to keep runtime sane.
    const std::size_t stride = std::max<std::size_t>(1, params[s].size() / 7);
    for (std::size_t i = 0; i < params[s].size(); i += stride) {
      const double orig = params[s][i];
      params[s][i] = orig + eps;
      const double lp = loss_of(net, x);
      params[s][i] = orig - eps;
      const double lm = loss_of(net, x);
      params[s][i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = grads[s][i];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, 1e-5 * scale)
          << "tensor " << s << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LstmGradCheck,
    ::testing::Values(GradCheckCase{3, 1, 2, 4}, GradCheckCase{4, 2, 3, 5},
                      GradCheckCase{2, 3, 1, 6}, GradCheckCase{5, 1, 4, 3},
                      GradCheckCase{3, 2, 2, 8}));

TEST(DenseGradCheck, AnalyticMatchesFiniteDifference) {
  Rng rng(7);
  ld::nn::DenseLayer dense(4, 2, rng);
  Matrix x(3, 4);
  for (double& v : x.flat()) v = rng.uniform(-1.0, 1.0);

  const Matrix y = dense.forward(x);
  Matrix dy(3, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) dy(r, c) = y(r, c);
  dense.zero_grad();
  const Matrix dx = dense.backward(dy);

  auto params = dense.parameters();
  auto grads = dense.gradients();
  const double eps = 1e-6;
  for (std::size_t s = 0; s < params.size(); ++s) {
    for (std::size_t i = 0; i < params[s].size(); ++i) {
      const double orig = params[s][i];
      auto loss = [&] {
        const Matrix out = dense.forward(x);
        double l = 0.0;
        for (const double v : out.flat()) l += 0.5 * v * v;
        return l;
      };
      params[s][i] = orig + eps;
      const double lp = loss();
      params[s][i] = orig - eps;
      const double lm = loss();
      params[s][i] = orig;
      EXPECT_NEAR(grads[s][i], (lp - lm) / (2.0 * eps), 1e-4);
    }
  }

  // Input gradient too.
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      const double orig = x(r, c);
      x(r, c) = orig + eps;
      const Matrix yp = dense.forward(x);
      x(r, c) = orig - eps;
      const Matrix ym = dense.forward(x);
      x(r, c) = orig;
      double lp = 0.0, lm = 0.0;
      for (const double v : yp.flat()) lp += 0.5 * v * v;
      for (const double v : ym.flat()) lm += 0.5 * v * v;
      EXPECT_NEAR(dx(r, c), (lp - lm) / (2.0 * eps), 1e-4);
    }
}

}  // namespace
