// Auto-scaling simulator: the mechanistic link from prediction error to
// turnaround / provisioning metrics (Fig. 10's substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "cloudsim/autoscaler.hpp"
#include "timeseries/smoothing.hpp"

namespace {

using namespace ld::cloudsim;

AutoScalerConfig deterministic_config() {
  AutoScalerConfig cfg;
  cfg.vm.job_service_cv = 0.0;  // deterministic service times (lognormal collapses)
  cfg.vm.job_service_mean = 180.0;
  cfg.vm.startup_seconds = 100.0;
  return cfg;
}

TEST(AutoScaler, PerfectOracleHasNoProvisioningError) {
  const std::vector<double> actual{10.0, 20.0, 15.0, 30.0};
  const auto result = simulate(actual, actual, deterministic_config());
  EXPECT_EQ(result.under_provisioning_rate(), 0.0);
  EXPECT_EQ(result.over_provisioning_rate(), 0.0);
  EXPECT_NEAR(result.avg_turnaround(), 180.0, 1.0);  // pure service time
  EXPECT_EQ(result.total_idle_cost(), 0.0);
}

TEST(AutoScaler, UnderProvisioningAddsStartupLatency) {
  const std::vector<double> actual{10.0};
  const std::vector<double> predicted{5.0};  // half the jobs wait for cold VMs
  const auto result = simulate(predicted, actual, deterministic_config());
  EXPECT_EQ(result.intervals[0].under_provisioned, 5u);
  EXPECT_EQ(result.intervals[0].over_provisioned, 0u);
  // Half the jobs: 180 s; other half: 280 s -> mean 230 s.
  EXPECT_NEAR(result.avg_turnaround(), 230.0, 1.0);
  EXPECT_NEAR(result.under_provisioning_rate(), 50.0, 1e-9);
}

TEST(AutoScaler, OverProvisioningWastesMoneyNotTime) {
  const std::vector<double> actual{10.0};
  const std::vector<double> predicted{15.0};
  const auto result = simulate(predicted, actual, deterministic_config());
  EXPECT_EQ(result.intervals[0].over_provisioned, 5u);
  EXPECT_NEAR(result.avg_turnaround(), 180.0, 1.0);  // no latency penalty
  EXPECT_NEAR(result.over_provisioning_rate(), 50.0, 1e-9);
  EXPECT_GT(result.total_idle_cost(), 0.0);
  EXPECT_NEAR(result.intervals[0].idle_vm_seconds, 5.0 * 3600.0, 1e-9);
}

TEST(AutoScaler, FractionalPredictionsRoundUp) {
  const std::vector<double> actual{3.0};
  const std::vector<double> predicted{2.2};
  const auto result = simulate(predicted, actual, deterministic_config());
  EXPECT_EQ(result.intervals[0].provisioned_vms, 3u);  // ceil(2.2)
  EXPECT_EQ(result.intervals[0].under_provisioned, 0u);
}

TEST(AutoScaler, NegativePredictionsTreatedAsZero) {
  const std::vector<double> actual{4.0};
  const std::vector<double> predicted{-5.0};
  const auto result = simulate(predicted, actual, deterministic_config());
  EXPECT_EQ(result.intervals[0].provisioned_vms, 0u);
  EXPECT_EQ(result.intervals[0].under_provisioned, 4u);
}

TEST(AutoScaler, EmptyIntervalsIgnoredInAverages) {
  const std::vector<double> actual{0.0, 10.0};
  const std::vector<double> predicted{3.0, 10.0};
  const auto result = simulate(predicted, actual, deterministic_config());
  EXPECT_NEAR(result.avg_turnaround(), 180.0, 1.0);
  EXPECT_EQ(result.under_provisioning_rate(), 0.0);
}

TEST(AutoScaler, WorsePredictorYieldsWorseOutcomes) {
  // Same actuals; one forecast persistently 20% low, one 5% low.
  std::vector<double> actual(50);
  for (std::size_t i = 0; i < 50; ++i)
    actual[i] = 30.0 + 10.0 * std::sin(static_cast<double>(i) / 3.0);
  std::vector<double> bad(50), good(50);
  for (std::size_t i = 0; i < 50; ++i) {
    bad[i] = actual[i] * 0.8;
    good[i] = actual[i] * 0.95;
  }
  const auto bad_result = simulate(bad, actual, deterministic_config());
  const auto good_result = simulate(good, actual, deterministic_config());
  EXPECT_GT(bad_result.avg_turnaround(), good_result.avg_turnaround());
  EXPECT_GT(bad_result.under_provisioning_rate(), good_result.under_provisioning_rate());
}

TEST(AutoScaler, ServiceTimeDispersionIsReproducible) {
  AutoScalerConfig cfg;
  cfg.vm.job_service_cv = 0.3;
  cfg.seed = 99;
  const std::vector<double> actual{20.0, 20.0};
  const auto a = simulate(actual, actual, cfg);
  const auto b = simulate(actual, actual, cfg);
  EXPECT_EQ(a.avg_turnaround(), b.avg_turnaround());
  // Mean service time should still be near the configured mean.
  EXPECT_NEAR(a.avg_turnaround(), cfg.vm.job_service_mean, 40.0);
}

TEST(AutoScaler, SimulateWithPredictorWiresWalkForward) {
  std::vector<double> series(60, 12.0);  // constant workload
  ld::ts::MeanPredictor mean(5);
  const auto result =
      simulate_with_predictor(mean, series, 40, /*refit_every=*/5, deterministic_config());
  EXPECT_EQ(result.intervals.size(), 20u);
  // A mean predictor nails a constant workload.
  EXPECT_EQ(result.under_provisioning_rate(), 0.0);
  EXPECT_EQ(result.over_provisioning_rate(), 0.0);
}

TEST(AutoScaler, InputValidation) {
  const std::vector<double> a{1.0}, b{1.0, 2.0}, empty;
  EXPECT_THROW((void)simulate(a, b), std::invalid_argument);
  EXPECT_THROW((void)simulate(empty, empty), std::invalid_argument);
  AutoScalerConfig bad;
  bad.vm.job_service_mean = 0.0;
  EXPECT_THROW((void)simulate(a, a, bad), std::invalid_argument);
}

}  // namespace
