// The parallel execution layer: ThreadPool semantics (futures, exceptions,
// inline degradation, nesting) and the framework-level determinism claim —
// a batched LoadDynamics fit produces a bit-identical model database at any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/loaddynamics.hpp"
#include "workloads/generators.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace ld;

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.concurrency(), 2u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneThreadRunInline) {
  for (const std::size_t n : {0u, 1u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), 0u) << "size " << n << " must degrade to no workers";
    EXPECT_EQ(pool.concurrency(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); }).get();
    EXPECT_EQ(ran_on, caller) << "no-worker pools must execute on the caller";
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<int> hits(kCount, 0);
  std::vector<std::size_t> squares(kCount, 0);
  pool.parallel_for(0, kCount, [&](std::size_t i) {
    ++hits[i];
    squares[i] = i * i;
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
    ASSERT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstErrorAfterCompleting) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<int> hits(kCount, 0);
  try {
    pool.parallel_for(0, kCount, [&](std::size_t i) {
      ++hits[i];
      if (i == 13) throw std::runtime_error("thirteen");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "thirteen");
  }
  // A throw abandons only the remainder of its own chunk (at most
  // count/chunks - 1 indices); every other chunk completes, and no index
  // ever runs twice.
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_LE(hits[i], 1) << "index " << i;
  EXPECT_EQ(hits[13], 1);
  const int total = std::accumulate(hits.begin(), hits.end(), 0);
  EXPECT_GE(total, static_cast<int>(kCount) - 3);  // 16 chunks of 4 indices
}

TEST(ThreadPool, NestedWorkRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  // The outer chunks run on workers AND the calling thread; in both cases a
  // nested submit/parallel_for must make progress without deadlocking on the
  // occupied pool (workers run it inline; the caller drains it itself).
  pool.parallel_for(0, 8, [&](std::size_t) {
    auto f = pool.submit([&] { return inner_total.fetch_add(1) >= 0; });
    EXPECT_TRUE(f.get());
    pool.parallel_for(0, 4, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * (1 + 4));
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

// The ISSUE's headline acceptance test: fit() with batch_size=4 on a 4-thread
// global pool must produce exactly the database (hyperparameters AND MAPEs)
// and predictions of the 1-thread run.
TEST(ParallelDeterminism, BatchedFitMatchesSerialBitForBit) {
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kAzure, 60, {.days = 12.0, .seed = 42});
  const workloads::TraceSplit split = workloads::split_trace(trace);
  const std::vector<double> series = split.all();

  const auto run = [&](std::size_t threads) {
    ThreadPool::set_global_size(threads);
    core::LoadDynamicsConfig cfg;
    cfg.space = core::HyperparameterSpace::reduced();
    cfg.space.history_max = 16;
    cfg.space.cell_max = 8;
    cfg.space.layers_max = 1;
    cfg.max_iterations = 5;
    cfg.initial_random = 3;
    cfg.training.trainer.max_epochs = 8;
    cfg.seed = 42;
    cfg.batch_size = 4;
    const core::LoadDynamics framework(cfg);
    return framework.fit(split.train, split.validation);
  };

  const core::FitResult serial = run(1);
  const core::FitResult parallel = run(4);
  ThreadPool::set_global_size(ThreadPool::default_threads());

  ASSERT_EQ(serial.database.size(), parallel.database.size());
  for (std::size_t i = 0; i < serial.database.size(); ++i) {
    EXPECT_EQ(serial.database[i].hyperparameters, parallel.database[i].hyperparameters)
        << "database row " << i << " explored a different configuration";
    EXPECT_EQ(serial.database[i].validation_mape, parallel.database[i].validation_mape)
        << "database row " << i << " trained to a different MAPE";
  }
  EXPECT_EQ(serial.best_index, parallel.best_index);
  EXPECT_EQ(serial.predictor().predict_series(series, split.test_start()),
            parallel.predictor().predict_series(series, split.test_start()));
}

// Random and grid strategies fan the whole design out; they must also be
// thread-count independent.
TEST(ParallelDeterminism, RandomAndGridSearchesThreadCountIndependent) {
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kLcg, 60, {.days = 10.0, .seed = 7});
  const workloads::TraceSplit split = workloads::split_trace(trace);

  for (const core::SearchStrategy strategy :
       {core::SearchStrategy::kRandom, core::SearchStrategy::kGrid}) {
    const auto run = [&](std::size_t threads) {
      ThreadPool::set_global_size(threads);
      core::LoadDynamicsConfig cfg;
      cfg.space = core::HyperparameterSpace::reduced();
      cfg.space.history_max = 16;
      cfg.space.cell_max = 8;
      cfg.space.layers_max = 1;
      cfg.strategy = strategy;
      cfg.max_iterations = 4;
      cfg.training.trainer.max_epochs = 6;
      cfg.seed = 7;
      const core::LoadDynamics framework(cfg);
      return framework.fit(split.train, split.validation);
    };
    const core::FitResult serial = run(1);
    const core::FitResult parallel = run(3);
    ThreadPool::set_global_size(ThreadPool::default_threads());

    ASSERT_EQ(serial.database.size(), parallel.database.size());
    for (std::size_t i = 0; i < serial.database.size(); ++i) {
      EXPECT_EQ(serial.database[i].hyperparameters, parallel.database[i].hyperparameters);
      EXPECT_EQ(serial.database[i].validation_mape, parallel.database[i].validation_mape);
    }
    EXPECT_EQ(serial.best_index, parallel.best_index);
  }
}

}  // namespace
