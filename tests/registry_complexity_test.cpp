// Publish-complexity regression guard (ISSUE 10 / ROADMAP item 1): under the
// pre-PR-10 copy-on-write std::map, every publish copied the whole shard, so
// per-publish cost grew linearly with occupancy (the last 5k of a 10k-tenant
// registration sweep took ~12s). The persistent trie copies only the
// root-to-leaf spine, so the p99 of the *last* thousand publishes into a 10k
// shard must stay within a constant factor of the *first* thousand.
//
// Timing is measured directly with Stopwatch into raw vectors (exact
// percentile by sort) rather than through ld_registry_publish_latency — the
// metrics registry has no histogram subtraction, so it cannot be windowed
// per-thousand; it is only sanity-checked for total count here. Marked
// `slow`: ~10k publishes of one shared PublishedModel, no training in the
// loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/model.hpp"
#include "obs/registry.hpp"
#include "serving/registry.hpp"
#include "test_util.hpp"

namespace {

using namespace ld;

/// Exact (not bucketed) p99 of one window of per-publish seconds.
double exact_p99(std::vector<double> window) {
  std::sort(window.begin(), window.end());
  return window[(window.size() * 99) / 100];
}

TEST(PublishComplexity, LastThousandPublishesNoWorseThanFirst) {
  constexpr std::size_t kTenants = 10000;
  constexpr std::size_t kWindow = 1000;

  const std::vector<double> series = testutil::seasonal_series(64);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 4;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  const core::TrainedModel model(std::span<const double>(series).subspan(0, n_train),
                                 std::span<const double>(series).subspan(n_train), hp,
                                 training, 7);
  // One shared immutable version for every tenant: the loop then times pure
  // registry work (hash + spine copy + root swap), not model construction.
  const auto published = serving::PublishedModel::make(model, 1, 1);

  serving::ModelRegistry registry(1);  // one shard: occupancy grows 0 -> 10k
  const metrics::LatencyHistogram before =
      obs::MetricsRegistry::global()
          .histogram("ld_registry_publish_latency", {{"shard", "0"}}, 1e-7, 1e2)
          .snapshot();

  std::vector<double> publish_seconds;
  publish_seconds.reserve(kTenants);
  char name[16];
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::snprintf(name, sizeof name, "t%05zu", i);
    Stopwatch clock;
    registry.publish(name, published);
    publish_seconds.push_back(clock.seconds());
  }

  ASSERT_EQ(registry.size(), kTenants);
  std::vector<double> first(publish_seconds.begin(), publish_seconds.begin() + kWindow);
  std::vector<double> last(publish_seconds.end() - kWindow, publish_seconds.end());
  const double p99_first = exact_p99(std::move(first));
  const double p99_last = exact_p99(std::move(last));

  // The gate from ISSUE 10: sub-linear publish cost. A copy-on-write map
  // fails this by ~two orders of magnitude (10k/100 element copies); the
  // trie's spine depth grows ~log32, so 8x absorbs timer noise with margin.
  // The 1us floor keeps an absurdly fast first window from turning jitter
  // into a failure.
  EXPECT_LE(p99_last, 8.0 * std::max(p99_first, 1e-6))
      << "first-1k p99 " << p99_first * 1e6 << "us vs last-1k p99 " << p99_last * 1e6
      << "us — publish cost is growing with shard occupancy";

  // The production histogram saw every publish (the bench gate and ops
  // endpoints consume this series; it must not silently detach).
  const metrics::LatencyHistogram after =
      obs::MetricsRegistry::global()
          .histogram("ld_registry_publish_latency", {{"shard", "0"}}, 1e-7, 1e2)
          .snapshot();
  EXPECT_EQ(after.count() - before.count(), kTenants);
}

}  // namespace
