// Cross-module integration: the full LoadDynamics pipeline on synthetic
// paper workloads, against the baselines, through to the auto-scaling sim.
// These are the "does the reproduced system behave like the paper says"
// tests at a miniature scale.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/cloudscale.hpp"
#include "baselines/wood.hpp"
#include "cloudsim/autoscaler.hpp"
#include "common/metrics.hpp"
#include "core/loaddynamics.hpp"
#include "workloads/generators.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace ld;

core::LoadDynamicsConfig tiny_config() {
  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.space.history_max = 48;
  cfg.space.cell_max = 16;
  cfg.space.layers_max = 1;
  cfg.max_iterations = 8;
  cfg.initial_random = 4;
  cfg.training.trainer.max_epochs = 30;
  cfg.training.trainer.patience = 6;
  cfg.training.trainer.learning_rate = 1e-2;
  cfg.training.trainer.min_updates = 400;
  cfg.training.max_train_windows = 1200;
  return cfg;
}

TEST(Integration, LoadDynamicsPredictsWikipediaAccurately) {
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kWikipedia, 30, {.days = 12.0, .seed = 11});
  const workloads::TraceSplit split = workloads::split_trace(trace);

  core::LoadDynamics framework(tiny_config());
  const core::FitResult fit = framework.fit(split.train, split.validation);

  const std::vector<double> series = split.all();
  const std::vector<double> preds =
      fit.predictor().predict_series(series, split.test_start());
  const double mape = metrics::mape(split.test, preds);
  // The paper reports ~1% on Wikipedia; at miniature scale we accept <10%.
  EXPECT_LT(mape, 10.0) << "Wikipedia should be highly predictable";
}

TEST(Integration, LoadDynamicsBeatsBaselinesOnAverage) {
  // The paper's headline comparison (Fig. 9b "Average"). At this miniature
  // scale (12 BO iterations vs the paper's 100) we assert the robust version:
  // LoadDynamics clearly beats CloudScale (the paper's largest margin,
  // -14.1%) and stays within noise of the online-refit Wood baseline.
  double lstm_total = 0.0, wood_total = 0.0, cloudscale_total = 0.0;
  for (const workloads::TraceKind kind :
       {workloads::TraceKind::kWikipedia, workloads::TraceKind::kGoogle,
        workloads::TraceKind::kLcg}) {
    const workloads::Trace trace = workloads::generate(kind, 30, {.days = 12.0, .seed = 21});
    const workloads::TraceSplit split = workloads::split_trace(trace);
    const std::vector<double> series = split.all();

    core::LoadDynamicsConfig strong = tiny_config();
    strong.max_iterations = 12;
    strong.training.trainer.max_epochs = 40;
    strong.training.trainer.patience = 8;
    core::LoadDynamics framework(strong);
    const core::FitResult fit = framework.fit(split.train, split.validation);
    const std::vector<double> lstm_preds =
        fit.predictor().predict_series(series, split.test_start());
    lstm_total += metrics::mape(split.test, lstm_preds);

    baselines::WoodPredictor wood;
    const auto wood_preds =
        ts::walk_forward(wood, series, split.test_start(), {.refit_every = 5});
    wood_total += metrics::mape(split.test, wood_preds);

    baselines::CloudScalePredictor cloudscale;
    const auto cs_preds =
        ts::walk_forward(cloudscale, series, split.test_start(), {.refit_every = 48});
    cloudscale_total += metrics::mape(split.test, cs_preds);
  }
  EXPECT_LT(lstm_total, cloudscale_total)
      << "LoadDynamics must clearly beat CloudScale on average (paper: -14.1%)";
  EXPECT_LT(lstm_total, wood_total * 1.10)
      << "LoadDynamics must stay competitive with the online-refit Wood baseline";
}

TEST(Integration, SmallIntervalsHarderThanLargeForAzure) {
  // The paper's observation: FB/LCG/Azure errors grow as intervals shrink.
  const workloads::Trace minutely =
      workloads::generate_minutely(workloads::TraceKind::kAzure, {.days = 12.0, .seed = 31});

  auto mape_at = [&](std::size_t interval) {
    const workloads::Trace t = workloads::aggregate(minutely, interval);
    const workloads::TraceSplit split = workloads::split_trace(t);
    core::LoadDynamics framework(tiny_config());
    const core::FitResult fit = framework.fit(split.train, split.validation);
    const std::vector<double> series = split.all();
    const std::vector<double> preds =
        fit.predictor().predict_series(series, split.test_start());
    return metrics::mape(split.test, preds);
  };

  const double fine = mape_at(10);
  const double coarse = mape_at(60);
  EXPECT_GT(fine, coarse) << "10-minute Azure should be harder than 60-minute (Fig. 9a)";
}

TEST(Integration, AutoScalingOrderingFollowsAccuracy) {
  // Fig. 10's mechanism: a more accurate predictor must produce better
  // turnaround and lower over-provisioning in the simulator. Compare
  // LoadDynamics against a deliberately crippled forecaster.
  const workloads::Trace trace = workloads::generate(
      workloads::TraceKind::kAzure, 60, {.days = 12.0, .seed = 41, .scale = 0.01});
  const workloads::TraceSplit split = workloads::split_trace(trace);
  const std::vector<double> series = split.all();

  core::LoadDynamics framework(tiny_config());
  const core::FitResult fit = framework.fit(split.train, split.validation);
  const std::vector<double> ld_preds =
      fit.predictor().predict_series(series, split.test_start());

  // Crippled baseline: global cubic extrapolation (wild on regime shifts).
  std::vector<double> stale_preds(split.test.size(),
                                  series[split.test_start() - 24]);  // day-old value

  cloudsim::AutoScalerConfig sim_cfg;
  sim_cfg.vm.job_service_cv = 0.1;
  const auto ld_sim = cloudsim::simulate(ld_preds, split.test, sim_cfg);
  const auto stale_sim = cloudsim::simulate(stale_preds, split.test, sim_cfg);

  const double ld_mape = metrics::mape(split.test, ld_preds);
  const double stale_mape = metrics::mape(split.test, stale_preds);
  ASSERT_LT(ld_mape, stale_mape);  // precondition of the comparison

  EXPECT_LE(ld_sim.avg_turnaround(), stale_sim.avg_turnaround() * 1.02);
  EXPECT_LT(ld_sim.over_provisioning_rate() + ld_sim.under_provisioning_rate(),
            stale_sim.over_provisioning_rate() + stale_sim.under_provisioning_rate());
}

TEST(Integration, CloudScaleShinesOnSeasonalStrugglesOnBursty) {
  // Fig. 2's motivation: pattern-matching predictors are workload-sensitive.
  const workloads::Trace wiki =
      workloads::generate(workloads::TraceKind::kWikipedia, 30, {.days = 12.0, .seed = 51});
  const workloads::Trace lcg =
      workloads::generate(workloads::TraceKind::kLcg, 30, {.days = 12.0, .seed = 51});

  auto cloudscale_mape = [](const workloads::Trace& trace) {
    const workloads::TraceSplit split = workloads::split_trace(trace);
    const std::vector<double> series = split.all();
    baselines::CloudScalePredictor cs;
    const auto preds =
        ts::walk_forward(cs, series, split.test_start(), {.refit_every = 48});
    return metrics::mape(split.test, preds);
  };

  EXPECT_LT(cloudscale_mape(wiki), cloudscale_mape(lcg));
}

TEST(Integration, TrainedModelPluggableIntoWalkForward) {
  // TrainedModel implements ts::Predictor, so the baseline harness drives it.
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kGoogle, 30, {.days = 8.0, .seed = 61});
  const workloads::TraceSplit split = workloads::split_trace(trace);

  core::LoadDynamics framework(tiny_config());
  const core::FitResult fit = framework.fit(split.train, split.validation);
  auto predictor = fit.model;

  const std::vector<double> series = split.all();
  const auto preds = ts::walk_forward(*predictor, series, split.test_start());
  EXPECT_EQ(preds.size(), split.test.size());
  const double mape = metrics::mape(split.test, preds);
  EXPECT_LT(mape, 60.0);
}

}  // namespace
