// Bayesian-optimization stack: kernels, GP posterior correctness, EI
// properties and the full optimizer loop on analytic objectives.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bayesopt/acquisition.hpp"
#include "bayesopt/gaussian_process.hpp"
#include "bayesopt/kernel.hpp"
#include "bayesopt/optimizer.hpp"
#include "bayesopt/search_space.hpp"

namespace {

using namespace ld::bayesopt;
using ld::tensor::Matrix;

TEST(Kernel, DiagonalEqualsSignalVariance) {
  for (const KernelType type :
       {KernelType::kRbf, KernelType::kMatern32, KernelType::kMatern52}) {
    auto k = make_kernel(type);
    k->set_params({.signal_variance = 2.5, .lengthscale = 0.3});
    const std::vector<double> x{0.2, 0.7, 0.4};
    EXPECT_NEAR((*k)(x, x), 2.5, 1e-12) << k->name();
  }
}

TEST(Kernel, DecreasesWithDistanceAndStaysPositive) {
  for (const KernelType type :
       {KernelType::kRbf, KernelType::kMatern32, KernelType::kMatern52}) {
    auto k = make_kernel(type);
    k->set_params({.signal_variance = 1.0, .lengthscale = 0.25});
    const std::vector<double> origin{0.0};
    double prev = (*k)(origin, origin);
    for (double d = 0.1; d <= 2.0; d += 0.1) {
      const std::vector<double> x{d};
      const double v = (*k)(origin, x);
      EXPECT_LT(v, prev) << k->name() << " at distance " << d;
      EXPECT_GT(v, 0.0);
      prev = v;
    }
  }
}

TEST(Kernel, DimensionMismatchThrows) {
  auto k = make_kernel(KernelType::kRbf);
  const std::vector<double> a{0.1, 0.2}, b{0.3};
  EXPECT_THROW((void)(*k)(a, b), std::invalid_argument);
}

TEST(GaussianProcess, InterpolatesTrainingPointsWithLowNoise) {
  Matrix x(5, 1);
  std::vector<double> y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i) / 4.0;
    y[i] = std::sin(3.0 * x(i, 0));
  }
  GaussianProcess gp({.kernel = KernelType::kMatern52, .noise_variance = 1e-8});
  gp.fit(x, y);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 5e-2);
    EXPECT_LT(p.variance, 0.2);
  }
}

TEST(GaussianProcess, VarianceGrowsAwayFromData) {
  Matrix x(3, 1);
  std::vector<double> y{0.0, 0.5, 1.0};
  x(0, 0) = 0.4;
  x(1, 0) = 0.5;
  x(2, 0) = 0.6;
  GaussianProcess gp;
  gp.fit(x, y);
  const std::vector<double> near{0.5}, far{5.0};
  EXPECT_LT(gp.predict(near).variance, gp.predict(far).variance);
}

TEST(GaussianProcess, SinglePointPosteriorRevertsToPriorFarAway) {
  Matrix x(1, 1);
  x(0, 0) = 0.5;
  std::vector<double> y{3.0};
  GaussianProcess gp({.optimize_hyperparams = false});
  gp.fit(x, y);
  // Far from the observation the mean returns to the (standardized) prior
  // mean, which after destandardization is the observation mean itself.
  const std::vector<double> far{100.0};
  EXPECT_NEAR(gp.predict(far).mean, 3.0, 1e-6);
}

TEST(GaussianProcess, HandlesDuplicatePoints) {
  Matrix x(4, 1);
  std::vector<double> y{1.0, 1.2, 1.0, 1.2};
  x(0, 0) = 0.5;
  x(1, 0) = 0.5;  // exact duplicates with conflicting targets
  x(2, 0) = 0.5;
  x(3, 0) = 0.5;
  GaussianProcess gp;
  EXPECT_NO_THROW(gp.fit(x, y));
  const std::vector<double> q{0.5};
  const auto p = gp.predict(q);
  EXPECT_GT(p.mean, 0.9);
  EXPECT_LT(p.mean, 1.3);
}

TEST(GaussianProcess, RejectsNonFiniteTargets) {
  Matrix x(2, 1);
  std::vector<double> y{1.0, std::nan("")};
  GaussianProcess gp;
  EXPECT_THROW(gp.fit(x, y), std::invalid_argument);
}

TEST(Acquisition, NormalCdfPdfSanity) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
}

class EiProperty : public ::testing::TestWithParam<double> {};

TEST_P(EiProperty, NonNegativeAndMonotonicInBest) {
  const double mean = GetParam();
  const double ei_low_best = expected_improvement(mean, 0.04, mean - 1.0);
  const double ei_high_best = expected_improvement(mean, 0.04, mean + 1.0);
  EXPECT_GE(ei_low_best, 0.0);
  EXPECT_GE(ei_high_best, ei_low_best);  // more room to improve -> higher EI
}

INSTANTIATE_TEST_SUITE_P(Means, EiProperty, ::testing::Values(-2.0, -0.5, 0.0, 0.7, 3.0));

TEST(Acquisition, ZeroVarianceGivesZeroEi) {
  EXPECT_EQ(expected_improvement(0.5, 0.0, 1.0), 0.0);
}

TEST(Acquisition, LcbOrdersByUncertainty) {
  EXPECT_LT(lower_confidence_bound(1.0, 4.0), lower_confidence_bound(1.0, 0.25));
}

TEST(SearchSpace, RoundTripLinearAndLog) {
  SearchSpace space({{.name = "a", .low = 1.0, .high = 512.0, .integer = true, .log_scale = true},
                     {.name = "b", .low = 0.0, .high = 10.0}});
  const std::vector<double> unit{0.5, 0.3};
  const auto values = space.to_values(unit);
  EXPECT_GE(values[0], 1.0);
  EXPECT_LE(values[0], 512.0);
  EXPECT_DOUBLE_EQ(values[1], 3.0);
  // Canonicalized points map to themselves.
  const auto canon = space.canonicalize(unit);
  EXPECT_EQ(space.canonicalize(canon), canon);
}

TEST(SearchSpace, LogScaleSkewsTowardSmallValues) {
  SearchSpace space({{.name = "n", .low = 1.0, .high = 1000.0, .log_scale = true}});
  const auto mid = space.to_values(std::vector<double>{0.5});
  EXPECT_NEAR(mid[0], std::sqrt(1000.0), 1.0);  // geometric midpoint
}

TEST(SearchSpace, RejectsBadDimensions) {
  SearchSpace space;
  EXPECT_THROW(space.add({.name = "x", .low = 5.0, .high = 1.0}), std::invalid_argument);
  EXPECT_THROW(space.add({.name = "x", .low = 0.0, .high = 1.0, .log_scale = true}),
               std::invalid_argument);
}

double quadratic_objective(const std::vector<double>& v) {
  // Minimum at (0.3, 0.7) with value 1.0.
  const double a = v[0] - 0.3, b = v[1] - 0.7;
  return 1.0 + 10.0 * (a * a + b * b);
}

TEST(BayesianOptimizer, FindsQuadraticMinimum) {
  SearchSpace space({{.name = "x", .low = 0.0, .high = 1.0},
                     {.name = "y", .low = 0.0, .high = 1.0}});
  BayesianOptimizer optimizer(space, {.max_iterations = 30, .initial_random = 6}, 17);
  const auto result = optimizer.optimize(quadratic_objective);
  EXPECT_EQ(result.history.size(), 30u);
  EXPECT_LT(result.best().objective, 1.3);
  EXPECT_NEAR(result.best().values[0], 0.3, 0.25);
  EXPECT_NEAR(result.best().values[1], 0.7, 0.25);
}

TEST(BayesianOptimizer, BeatsRandomSearchOnAverage) {
  SearchSpace space({{.name = "x", .low = 0.0, .high = 1.0},
                     {.name = "y", .low = 0.0, .high = 1.0}});
  double bo_total = 0.0, rs_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BayesianOptimizer optimizer(space, {.max_iterations = 25, .initial_random = 5}, seed);
    bo_total += optimizer.optimize(quadratic_objective).best().objective;
    rs_total += random_search(space, quadratic_objective, 25, seed).best().objective;
  }
  EXPECT_LE(bo_total, rs_total * 1.05);  // BO should not lose by more than noise
}

TEST(BayesianOptimizer, SurvivesNanObjective) {
  SearchSpace space({{.name = "x", .low = 0.0, .high = 1.0}});
  std::size_t calls = 0;
  const Objective objective = [&](const std::vector<double>& v) {
    ++calls;
    return v[0] < 0.5 ? std::nan("") : v[0];
  };
  BayesianOptimizer optimizer(space, {.max_iterations = 15, .initial_random = 4}, 3);
  const auto result = optimizer.optimize(objective);
  EXPECT_EQ(calls, 15u);
  EXPECT_GE(result.best().values[0], 0.5);  // never picks the NaN region as best
}

TEST(OptimizationResult, IncumbentTraceIsMonotone) {
  SearchSpace space({{.name = "x", .low = 0.0, .high = 1.0}});
  const auto result =
      random_search(space, [](const std::vector<double>& v) { return v[0]; }, 20, 5);
  const auto trace = result.incumbent_trace();
  for (std::size_t i = 1; i < trace.size(); ++i) EXPECT_LE(trace[i], trace[i - 1]);
}

TEST(GridSearch, CoversLatticeWithinBudget) {
  SearchSpace space({{.name = "x", .low = 0.0, .high = 1.0},
                     {.name = "y", .low = 0.0, .high = 1.0}});
  const auto result =
      grid_search(space, [](const std::vector<double>& v) { return v[0] + v[1]; }, 25);
  EXPECT_LE(result.history.size(), 25u);
  EXPECT_GE(result.history.size(), 16u);  // 4x4 lattice fits in 25
  EXPECT_NEAR(result.best().objective, 0.0, 1e-12);
}

}  // namespace
