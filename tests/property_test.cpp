// Additional property sweeps: kernel PSD-ness over random point sets, and
// serialization round-trips for the extended model configurations (GRU,
// alternative activations).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "bayesopt/kernel.hpp"
#include "common/rng.hpp"
#include "core/serialization.hpp"
#include "tensor/linalg.hpp"

namespace {

using namespace ld;

class KernelPsd
    : public ::testing::TestWithParam<std::tuple<bayesopt::KernelType, int>> {};

TEST_P(KernelPsd, GramMatrixIsPositiveSemiDefinite) {
  const auto [type, seed] = GetParam();
  auto kernel = bayesopt::make_kernel(type);
  kernel->set_params({.signal_variance = 1.5, .lengthscale = 0.3});
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 12, d = 3;
  std::vector<std::vector<double>> points(n, std::vector<double>(d));
  for (auto& p : points)
    for (double& v : p) v = rng.uniform();

  tensor::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) gram(i, j) = (*kernel)(points[i], points[j]);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += 1e-9;  // numerical jitter
  // PSD iff the (jittered) Cholesky succeeds.
  EXPECT_NO_THROW((void)tensor::cholesky(gram)) << kernel->name();
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelPsd,
    ::testing::Combine(::testing::Values(bayesopt::KernelType::kRbf,
                                         bayesopt::KernelType::kMatern32,
                                         bayesopt::KernelType::kMatern52),
                       ::testing::Range(1, 5)));

std::vector<double> seasonal(std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        100.0 + 40.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  return out;
}

struct ExtendedConfigCase {
  nn::CellType cell;
  nn::Activation activation;
  nn::Loss loss;
};

class ExtendedSerialization : public ::testing::TestWithParam<ExtendedConfigCase> {};

TEST_P(ExtendedSerialization, RoundTripsExactly) {
  const ExtendedConfigCase param = GetParam();
  const auto series = seasonal(240);
  const std::span<const double> all(series);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 5;
  core::Hyperparameters hp{.history_length = 12,
                           .cell_size = 8,
                           .num_layers = 2,
                           .batch_size = 32,
                           .activation = param.activation,
                           .loss = param.loss,
                           .cell = param.cell,
                           .learning_rate = 5e-3,
                           .dropout = 0.1};
  const core::TrainedModel model(all.subspan(0, 180), all.subspan(180), hp, training, 3);

  std::stringstream stream;
  core::save_model(model, stream);
  const auto restored = core::load_model(stream);

  EXPECT_EQ(restored->hyperparameters(), model.hyperparameters());
  EXPECT_EQ(restored->predict_next(all.subspan(0, 200)),
            model.predict_next(all.subspan(0, 200)))
      << "restored " << nn::cell_type_name(param.cell) << "/"
      << nn::activation_name(param.activation) << " model must be bit-exact";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExtendedSerialization,
    ::testing::Values(
        ExtendedConfigCase{nn::CellType::kLstm, nn::Activation::kTanh, nn::Loss::kMse},
        ExtendedConfigCase{nn::CellType::kGru, nn::Activation::kTanh, nn::Loss::kMse},
        ExtendedConfigCase{nn::CellType::kGru, nn::Activation::kSoftsign, nn::Loss::kHuber},
        ExtendedConfigCase{nn::CellType::kLstm, nn::Activation::kSigmoid, nn::Loss::kMae}));

}  // namespace
