#include "test_util.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace ld::testutil {

ScopedTempDir::ScopedTempDir(const std::string& tag) {
  path_ = std::filesystem::temp_directory_path() / ("ld_test_" + tag);
  std::filesystem::remove_all(path_);
  std::filesystem::create_directories(path_);
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;  // best-effort: never throw out of a destructor
  std::filesystem::remove_all(path_, ec);
}

std::vector<double> seasonal_series(std::size_t n, double base, double amplitude,
                                    double period, std::uint64_t noise_seed) {
  std::vector<double> series(n);
  Rng rng(noise_seed == 0 ? 1 : noise_seed);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = base + amplitude * std::sin(2.0 * std::numbers::pi *
                                            static_cast<double>(i) / period);
    if (noise_seed != 0) series[i] += rng.uniform(-1.0, 1.0);
  }
  return series;
}

void reset_metrics() { obs::MetricsRegistry::global().reset_for_testing(); }

std::uint64_t counter_value(const std::string& name, const obs::Labels& labels) {
  return obs::MetricsRegistry::global().counter(name, labels).value();
}

}  // namespace ld::testutil
