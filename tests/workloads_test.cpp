// Trace utilities and the five synthetic generators: shape properties that
// the evaluation narrative depends on must hold (seasonality, burstiness,
// interval-aggregation consistency, determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "common/csv.hpp"
#include "timeseries/fft.hpp"
#include "workloads/generators.hpp"
#include "workloads/trace.hpp"
#include "test_util.hpp"

namespace {

using namespace ld::workloads;

TEST(Trace, AggregateSumsMinutes) {
  Trace minutely;
  minutely.name = "t";
  minutely.interval_minutes = 1;
  for (int i = 1; i <= 10; ++i) minutely.jars.push_back(static_cast<double>(i));
  const Trace agg = aggregate(minutely, 3);
  EXPECT_EQ(agg.jars, (std::vector<double>{6.0, 15.0, 24.0}));  // partial tail dropped
  EXPECT_EQ(agg.interval_minutes, 3u);
}

TEST(Trace, AggregatePreservesTotalMass) {
  const Trace minutely = generate_minutely(TraceKind::kLcg, {.days = 2.0, .seed = 5});
  const Trace agg = aggregate(minutely, 30);
  const double total_min = std::accumulate(minutely.jars.begin(),
                                           minutely.jars.begin() + agg.size() * 30, 0.0);
  const double total_agg = std::accumulate(agg.jars.begin(), agg.jars.end(), 0.0);
  EXPECT_NEAR(total_min, total_agg, 1e-6);
}

TEST(Trace, SplitFractionsMatchPaper) {
  Trace t;
  t.name = "t";
  t.interval_minutes = 5;
  t.jars.assign(100, 1.0);
  const TraceSplit split = split_trace(t, 0.6, 0.2);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.validation.size(), 20u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.test_start(), 80u);
  EXPECT_EQ(split.all().size(), 100u);
  EXPECT_EQ(split.train_and_validation().size(), 80u);
}

TEST(Trace, SplitRejectsBadFractions) {
  Trace t;
  t.name = "t";
  t.interval_minutes = 5;
  t.jars.assign(100, 1.0);
  EXPECT_THROW((void)split_trace(t, 0.0, 0.2), std::invalid_argument);
  EXPECT_THROW((void)split_trace(t, 0.8, 0.3), std::invalid_argument);
}

TEST(Trace, ValidationCatchesBadTraces) {
  Trace empty;
  empty.name = "e";
  empty.interval_minutes = 1;
  EXPECT_THROW(validate_trace(empty), std::invalid_argument);

  Trace negative;
  negative.name = "n";
  negative.interval_minutes = 1;
  negative.jars = {1.0, -2.0};
  EXPECT_THROW(validate_trace(negative), std::invalid_argument);

  Trace nan_trace;
  nan_trace.name = "nan";
  nan_trace.interval_minutes = 1;
  nan_trace.jars = {1.0, std::nan("")};
  EXPECT_THROW(validate_trace(nan_trace), std::invalid_argument);
}

TEST(Trace, CsvRoundTrip) {
  const ld::testutil::ScopedTempDir tmp("trace");
  const std::string path = tmp.file("round_trip.csv");
  ld::csv::write_file(path, {"jar"}, {{10.0}, {20.0}, {30.0}});
  const Trace t = load_csv_trace(path, "csv_trace", 5);
  EXPECT_EQ(t.jars, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(t.interval_minutes, 5u);
}

class GeneratorDeterminism : public ::testing::TestWithParam<TraceKind> {};

TEST_P(GeneratorDeterminism, SameSeedSameTrace) {
  const GeneratorConfig cfg{.days = 1.5, .seed = 77};
  const Trace a = generate_minutely(GetParam(), cfg);
  const Trace b = generate_minutely(GetParam(), cfg);
  EXPECT_EQ(a.jars, b.jars);
  const Trace c = generate_minutely(GetParam(), {.days = 1.5, .seed = 78});
  EXPECT_NE(a.jars, c.jars);
}

TEST_P(GeneratorDeterminism, ProducesValidNonTrivialTrace) {
  const Trace t = generate(GetParam(), 30, {.days = 3.0, .seed = 5});
  EXPECT_NO_THROW(validate_trace(t));
  const TraceStats stats = compute_stats(t);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_GT(stats.cv, 0.0);  // no constant traces
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorDeterminism,
                         ::testing::Values(TraceKind::kWikipedia, TraceKind::kGoogle,
                                           TraceKind::kFacebook, TraceKind::kAzure,
                                           TraceKind::kLcg));

TEST(Generators, WikipediaHasStrongDailySeasonality) {
  const Trace t = generate(TraceKind::kWikipedia, 30, {.days = 10.0, .seed = 3});
  const TraceStats stats = compute_stats(t);
  EXPECT_GT(stats.daily_acf, 0.7) << "Wikipedia must look strongly diurnal (Fig. 1b)";
  const auto period = ld::ts::detect_period(t.jars);
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(static_cast<double>(period->period), 48.0, 8.0);  // 1 day at 30-min bins
}

TEST(Generators, LcgHasNoStrongSeasonalityAndIsBursty) {
  const Trace t = generate(TraceKind::kLcg, 30, {.days = 10.0, .seed = 3});
  const TraceStats stats = compute_stats(t);
  EXPECT_LT(stats.daily_acf, 0.5) << "LCG should not look like a clean daily cycle";
  EXPECT_GT(stats.max / stats.mean, 2.0) << "LCG must show job-storm bursts (Fig. 8b)";
}

TEST(Generators, WikipediaJarsAreMillionsGoogleHundredsOfThousands) {
  const Trace wiki = generate(TraceKind::kWikipedia, 30, {.days = 2.0, .seed = 1});
  const Trace google = generate(TraceKind::kGoogle, 30, {.days = 2.0, .seed = 1});
  EXPECT_GT(compute_stats(wiki).mean, 1e6);   // Fig. 1b: ~5M requests / 30 min
  EXPECT_GT(compute_stats(google).mean, 1e5); // Fig. 1a: ~800k jobs / 30 min
  EXPECT_LT(compute_stats(google).mean, 5e6);
}

TEST(Generators, FacebookCoversExactlyOneDay) {
  const Trace t = generate_minutely(TraceKind::kFacebook, {.days = 30.0, .seed = 9});
  EXPECT_EQ(t.jars.size(), 24u * 60u) << "Table I: the Facebook trace is one day long";
}

TEST(Generators, AzureNoisierAtFineIntervals) {
  // The coefficient of variation of *interval-relative* noise must shrink as
  // intervals grow — the paper's explanation for Azure-10m's 43% MAPE.
  const Trace minutely = generate_minutely(TraceKind::kAzure, {.days = 14.0, .seed = 4});
  auto lag1_noise = [&](std::size_t interval) {
    const Trace t = aggregate(minutely, interval);
    double rel = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 1; i < t.jars.size(); ++i) {
      if (t.jars[i - 1] <= 0.0) continue;
      rel += std::abs(t.jars[i] - t.jars[i - 1]) / t.jars[i - 1];
      ++count;
    }
    return rel / static_cast<double>(count);
  };
  EXPECT_GT(lag1_noise(10), lag1_noise(60) * 1.3);
}

TEST(Generators, ScaleParameterScalesMean) {
  const Trace full = generate(TraceKind::kAzure, 60, {.days = 5.0, .seed = 6, .scale = 1.0});
  const Trace small =
      generate(TraceKind::kAzure, 60, {.days = 5.0, .seed = 6, .scale = 0.01});
  const double ratio = compute_stats(full).mean / compute_stats(small).mean;
  EXPECT_NEAR(ratio, 100.0, 20.0);
}

TEST(Generators, PaperConfigurationsAreFourteen) {
  const auto configs = paper_workload_configurations();
  EXPECT_EQ(configs.size(), 14u);
  // Azure is evaluated at 10/30/60, Facebook only at 5/10 (Table I).
  std::size_t azure = 0, facebook = 0;
  for (const auto& c : configs) {
    if (c.kind == TraceKind::kAzure) {
      ++azure;
      EXPECT_NE(c.interval_minutes, 5u);
    }
    if (c.kind == TraceKind::kFacebook) {
      ++facebook;
      EXPECT_LE(c.interval_minutes, 10u);
    }
  }
  EXPECT_EQ(azure, 3u);
  EXPECT_EQ(facebook, 2u);
}

TEST(Generators, InvalidConfigThrows) {
  EXPECT_THROW((void)generate_minutely(TraceKind::kGoogle, {.days = 0.0}), std::invalid_argument);
  EXPECT_THROW((void)generate_minutely(TraceKind::kGoogle, {.days = 1.0, .seed = 1, .scale = 0.0}),
               std::invalid_argument);
}

}  // namespace
