// End-to-end learning behaviour of the NN stack: the LSTM must actually fit
// learnable signals, early stopping must restore the best weights, and
// inference must be deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/network.hpp"
#include "nn/scaler.hpp"
#include "nn/trainer.hpp"

namespace {

using ld::nn::LstmNetwork;
using ld::nn::MinMaxScaler;
using ld::nn::SlidingWindowDataset;
using ld::nn::TrainerConfig;

std::vector<double> sine_series(std::size_t n, double period) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = 0.5 + 0.4 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

TEST(Trainer, LearnsSineWave) {
  const std::vector<double> series = sine_series(400, 24.0);
  const SlidingWindowDataset train(std::span<const double>(series).subspan(0, 300), 24);
  const SlidingWindowDataset val(std::span<const double>(series).subspan(276), 24);

  LstmNetwork net({.input_size = 1, .hidden_size = 16, .num_layers = 1}, 3);
  TrainerConfig tc;
  tc.max_epochs = 40;
  tc.batch_size = 32;
  tc.learning_rate = 5e-3;
  const auto result = ld::nn::train(net, train, &val, tc, 11);

  EXPECT_LT(result.best_validation_loss, 1e-3)
      << "LSTM failed to learn a clean periodic signal";
  EXPECT_GT(result.epochs_run, 3u);
  // Loss must broadly decrease.
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());
}

TEST(Trainer, EarlyStoppingRestoresBestWeights) {
  const std::vector<double> series = sine_series(220, 16.0);
  const SlidingWindowDataset train(std::span<const double>(series).subspan(0, 160), 8);
  const SlidingWindowDataset val(std::span<const double>(series).subspan(152), 8);

  LstmNetwork net({.input_size = 1, .hidden_size = 8, .num_layers = 1}, 5);
  TrainerConfig tc;
  tc.max_epochs = 30;
  tc.patience = 3;
  const auto result = ld::nn::train(net, train, &val, tc, 21);

  // The weights in the network must reproduce the recorded best loss.
  const double loss_now = ld::nn::evaluate_mse(net, val);
  EXPECT_NEAR(loss_now, result.best_validation_loss, 1e-9);
}

TEST(Trainer, DeterministicGivenSeed) {
  const std::vector<double> series = sine_series(150, 12.0);
  const SlidingWindowDataset train(series, 6);

  auto run = [&] {
    LstmNetwork net({.input_size = 1, .hidden_size = 6, .num_layers = 1}, 17);
    TrainerConfig tc;
    tc.max_epochs = 5;
    (void)ld::nn::train(net, train, nullptr, tc, 33);
    return net.save_weights();
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, RejectsZeroBatch) {
  const std::vector<double> series = sine_series(50, 10.0);
  const SlidingWindowDataset train(series, 4);
  LstmNetwork net({.input_size = 1, .hidden_size = 4, .num_layers = 1}, 1);
  TrainerConfig tc;
  tc.batch_size = 0;
  EXPECT_THROW((void)ld::nn::train(net, train, nullptr, tc, 1), std::invalid_argument);
}

TEST(Network, SaveLoadRoundTrip) {
  LstmNetwork a({.input_size = 1, .hidden_size = 5, .num_layers = 2}, 9);
  LstmNetwork b({.input_size = 1, .hidden_size = 5, .num_layers = 2}, 10);
  const auto weights = a.save_weights();
  b.load_weights(weights);

  ld::tensor::Matrix x(2, 7);
  ld::Rng rng(4);
  for (double& v : x.flat()) v = rng.uniform();
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(Network, LoadRejectsWrongSize) {
  LstmNetwork net({.input_size = 1, .hidden_size = 3, .num_layers = 1}, 2);
  std::vector<double> bad(net.parameter_count() + 1, 0.0);
  EXPECT_THROW(net.load_weights(bad), std::invalid_argument);
}

TEST(Network, ParameterCountMatchesFormula) {
  const std::size_t h = 7, layers = 2;
  LstmNetwork net({.input_size = 1, .hidden_size = h, .num_layers = layers}, 2);
  // Layer 0: 4h*(1 + h) + 4h; layer 1: 4h*(h + h) + 4h; head: h + 1.
  const std::size_t expected =
      (4 * h * 1 + 4 * h * h + 4 * h) + (4 * h * h + 4 * h * h + 4 * h) + (h + 1);
  EXPECT_EQ(net.parameter_count(), expected);
}

}  // namespace
