// Verification surface for the persistent-map registry core (DESIGN.md §16):
//
//  - RegistryProperty: seeded random op sequences (publish / overwrite /
//    lookup / iterate / version-snapshot) driven differentially against a
//    std::map oracle, including adversarial hashers whose keys collide in
//    the *top* hash bits (forcing maximum-depth splits) or in all 64 bits
//    (forcing collision leaves). All randomness flows from ld::Rng, the
//    verify::Mutator seeding discipline from DESIGN.md §11: a failure
//    reproduces from (seed, iteration) alone.
//  - RegistryFuzz: verify::run_fuzz mutations of op scripts plus replay of
//    the tests/golden/corpus/registry_* seed corpus — the same
//    structure-aware corpus workflow the protocol/CSV/WAL parsers use.
//  - RegistryConcurrency: N publisher x M reader threads on one shard
//    assert readers always observe a fully-formed map version (no torn
//    spine), and that names() streamed during publishes stays sorted,
//    duplicate-free, and monotone. The TSan CI job runs this suite
//    ("Registry" is in its filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "serving/persistent_map.hpp"
#include "serving/registry.hpp"
#include "test_util.hpp"
#include "verify/fuzz.hpp"

namespace {

using namespace ld;
using serving::PersistentHashMap;

// ---------------------------------------------------------------------------
// Hashers. The trie consumes hashes MSB-first, so fixing the top 60 bits
// makes every key share one root-to-level-12 path: splits are forced to the
// deepest branch level, and keys whose final 4 bits also agree share a full
// 64-bit hash — the collision-leaf path. A constant hasher degenerates the
// whole map into one collision leaf.

struct TopBitsCollideHasher {
  std::uint64_t operator()(std::string_view key) const noexcept {
    return 0xA5A5A5A5A5A5A5A0ULL | (serving::fnv1a64(key) & 0xFULL);
  }
};

struct ConstantHasher {
  std::uint64_t operator()(std::string_view) const noexcept {
    return 0xDEADBEEFCAFEF00DULL;
  }
};

// ---------------------------------------------------------------------------
// Differential harness: every operation runs against the persistent map and
// a std::map oracle; any disagreement throws verify::InvariantViolation so
// the same harness serves the property tests and the fuzz target.

template <typename Hasher>
class DiffHarness {
 public:
  using Map = PersistentHashMap<int, Hasher>;

  void set(const std::string& key, int value) {
    map_ = map_.set(key, value);
    oracle_[key] = value;
    if (map_.size() != oracle_.size())
      fail("size mismatch after set '" + key + "': map " +
           std::to_string(map_.size()) + " vs oracle " + std::to_string(oracle_.size()));
  }

  void get(const std::string& key) const {
    const int* found = map_.find(key);
    const auto it = oracle_.find(key);
    if ((found != nullptr) != (it != oracle_.end()))
      fail("presence mismatch for '" + key + "'");
    if (found != nullptr && *found != it->second)
      fail("value mismatch for '" + key + "': map " + std::to_string(*found) +
           " vs oracle " + std::to_string(it->second));
    if (map_.contains(key) != (found != nullptr)) fail("contains()/find() disagree");
  }

  void iterate() const { check_pair(map_, oracle_); }

  /// Pin the current version; later sets must never disturb it.
  void snap() {
    if (snaps_.size() >= 8) snaps_.erase(snaps_.begin());
    snaps_.emplace_back(map_, oracle_);
  }

  void check_snaps() const {
    for (const auto& [map, oracle] : snaps_) check_pair(map, oracle);
  }

  void check_all() const {
    iterate();
    check_snaps();
    for (const auto& [key, _] : oracle_) get(key);
  }

  [[nodiscard]] const Map& map() const noexcept { return map_; }
  [[nodiscard]] const std::map<std::string, int>& oracle() const noexcept { return oracle_; }

 private:
  static void check_pair(const Map& map, const std::map<std::string, int>& oracle) {
    if (map.size() != oracle.size()) fail("size mismatch on iterate");
    const std::vector<std::pair<std::string, int>> entries = map.sorted_entries();
    auto it = oracle.begin();
    for (std::size_t i = 0; i < entries.size(); ++i, ++it) {
      if (entries[i].first != it->first)
        fail("iteration order diverged at '" + entries[i].first + "' vs '" + it->first +
             "' — sort key must be the name, not the hash");
      if (entries[i].second != it->second) fail("iterated value mismatch");
    }
    const std::vector<std::string> keys = map.sorted_keys();
    if (keys.size() != entries.size()) fail("sorted_keys/sorted_entries cardinality");
    for (std::size_t i = 0; i < keys.size(); ++i)
      if (keys[i] != entries[i].first) fail("sorted_keys/sorted_entries order");
    std::size_t visited = 0;
    map.for_each([&](const std::string& key, const int& value) {
      ++visited;
      const auto found = oracle.find(key);
      if (found == oracle.end() || found->second != value)
        fail("for_each yielded a key/value the oracle does not hold");
    });
    if (visited != oracle.size()) fail("for_each visit count mismatch");
  }

  [[noreturn]] static void fail(const std::string& what) {
    throw verify::InvariantViolation("registry diff: " + what);
  }

  Map map_;
  std::map<std::string, int> oracle_;
  std::vector<std::pair<Map, std::map<std::string, int>>> snaps_;
};

/// Seeded random op sequence: ~40% inserts, ~20% overwrites, ~25% lookups
/// (hit and miss), periodic iteration and version pinning.
template <typename Hasher>
void run_random_ops(std::uint64_t seed, std::size_t ops, std::size_t key_space) {
  Rng rng(seed);
  DiffHarness<Hasher> harness;
  const auto key = [&] {
    return "k" + std::to_string(rng.uniform_int(0, static_cast<long long>(key_space)));
  };
  for (std::size_t i = 0; i < ops; ++i) {
    const long long dice = rng.uniform_int(0, 99);
    if (dice < 60) {
      harness.set(key(), static_cast<int>(rng.uniform_int(-1000, 1000)));
    } else if (dice < 85) {
      harness.get(key());
    } else if (dice < 95) {
      harness.iterate();
    } else {
      harness.snap();
    }
    if (i % 97 == 0) harness.check_snaps();
  }
  harness.check_all();
}

// ---------------------------------------------------------------------------
// RegistryProperty

TEST(RegistryProperty, DifferentialAgainstMapOracleFnv) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL})
    ASSERT_NO_THROW(run_random_ops<serving::Fnv1aHasher>(seed, 4000, 1500)) << seed;
}

TEST(RegistryProperty, AdversarialTopBitCollisionsSplitDeepNotWrong) {
  // Top 60 bits fixed: every distinct-suffix pair of keys diverges only at
  // the deepest branch level, and ~1/16 of pairs collide in all 64 bits.
  for (const std::uint64_t seed : {21ULL, 22ULL})
    ASSERT_NO_THROW(run_random_ops<TopBitsCollideHasher>(seed, 2000, 400)) << seed;

  DiffHarness<TopBitsCollideHasher> harness;
  for (int i = 0; i < 64; ++i) harness.set("w" + std::to_string(i), i);
  ASSERT_NO_THROW(harness.check_all());
  // The layout claim, not just the answers: colliding top bits force the
  // spine through every branch level (12 branch levels + the leaf).
  EXPECT_GE(harness.map().depth_for_test(), 13u)
      << "top-bit collisions should split at the deepest level";
}

TEST(RegistryProperty, FullHashCollisionsDegradeToOneSortedLeaf) {
  for (const std::uint64_t seed : {31ULL, 32ULL})
    ASSERT_NO_THROW(run_random_ops<ConstantHasher>(seed, 800, 64)) << seed;

  DiffHarness<ConstantHasher> harness;
  for (int i = 0; i < 32; ++i) harness.set("c" + std::to_string(i), i);
  ASSERT_NO_THROW(harness.check_all());
  EXPECT_EQ(harness.map().depth_for_test(), 1u)
      << "one shared hash must collapse into a single collision leaf";
}

TEST(RegistryProperty, OldVersionsArePinnedForever) {
  // The RCU contract the registry swap rests on: a pinned version is frozen
  // however many publishes follow — byte-for-byte, not just size-for-size.
  using Map = PersistentHashMap<int>;
  Map empty;
  Map v1 = empty.set("wiki", 1);
  Map v2 = v1.set("azure", 2);
  Map v3 = v2.set("wiki", 3);  // overwrite must not disturb v1/v2
  EXPECT_EQ(empty.size(), 0u);
  ASSERT_NE(v1.find("wiki"), nullptr);
  EXPECT_EQ(*v1.find("wiki"), 1);
  EXPECT_EQ(v1.find("azure"), nullptr);
  EXPECT_EQ(*v2.find("wiki"), 1);
  EXPECT_EQ(*v2.find("azure"), 2);
  EXPECT_EQ(*v3.find("wiki"), 3);
  EXPECT_EQ(v3.size(), 2u);
  // Structural sharing: the untouched subtree is the same node, not a copy.
  EXPECT_EQ(v2.find("azure"), v3.find("azure"))
      << "path copying must share untouched subtrees between versions";
}

// ---------------------------------------------------------------------------
// RegistryFuzz: op-script interpreter as a fuzz target. The script grammar
// is whitespace-tokenized `set <key> <int>` / `get <key>` / `iter` / `snap`
// / `check` lines; anything malformed is skipped (a clean reject), and the
// differential invariants must hold across whatever survives mutation.

void run_script(const std::string& script) {
  DiffHarness<serving::Fnv1aHasher> harness;
  std::istringstream lines(script);
  std::string line;
  std::size_t applied = 0;
  while (std::getline(lines, line) && applied < 4096) {
    std::istringstream tokens(line);
    std::string verb, key;
    if (!(tokens >> verb)) continue;
    ++applied;
    if (verb == "set") {
      long long value = 0;
      if (tokens >> key >> value) harness.set(key, static_cast<int>(value));
    } else if (verb == "get") {
      if (tokens >> key) harness.get(key);
    } else if (verb == "iter") {
      harness.iterate();
    } else if (verb == "snap") {
      harness.snap();
    } else if (verb == "check") {
      harness.check_snaps();
    }
  }
  harness.check_all();
}

std::vector<std::string> registry_seed_scripts() {
  // Replay the committed corpus as the seed set so mutations start from
  // structure-rich inputs (mirrors verify::protocol_seeds()).
  std::vector<std::string> seeds;
  for (const std::string& path :
       verify::replay_corpus(LD_CORPUS_DIR, "registry_", [](const std::string&) {})) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    seeds.push_back(slurp.str());
  }
  return seeds;
}

TEST(RegistryFuzz, SeedCorpusReplaysClean) {
  const std::vector<std::string> replayed =
      verify::replay_corpus(LD_CORPUS_DIR, "registry_", run_script);
  EXPECT_GE(replayed.size(), 4u) << "registry_* seed corpus went missing";
}

TEST(RegistryFuzz, MutatedOpScriptsKeepTheOracleContract) {
  const std::vector<std::string> seeds = registry_seed_scripts();
  ASSERT_FALSE(seeds.empty());
  const verify::FuzzReport report =
      verify::run_fuzz(seeds, run_script, /*seed=*/0x7e9157ULL, /*iterations=*/600);
  EXPECT_TRUE(report.ok()) << report.summary()
                           << (report.failures.empty()
                                   ? ""
                                   : "\nfirst failing input:\n" +
                                         report.failures.front().input + "\n" +
                                         report.failures.front().message);
  EXPECT_EQ(report.iterations, 600u);
}

// ---------------------------------------------------------------------------
// RegistryConcurrency (TSan filter: "Registry")

std::shared_ptr<core::TrainedModel> quick_model(std::uint64_t seed = 7) {
  const std::vector<double> series = testutil::seasonal_series(64);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 4;
  const core::Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                                 .batch_size = 32};
  const std::size_t n_train = series.size() * 3 / 4;
  return std::make_shared<core::TrainedModel>(
      std::span<const double>(series).subspan(0, n_train),
      std::span<const double>(series).subspan(n_train), hp, training, seed);
}

TEST(RegistryConcurrency, ReadersNeverSeeATornSpine) {
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kPerPublisher = 400;
  serving::ModelRegistry registry(1);  // one shard: all writers collide
  const auto model = quick_model();
  const auto published = serving::PublishedModel::make(*model, 1, 1);

  std::atomic<bool> done{false};
  std::vector<std::string> all_names;
  for (std::size_t p = 0; p < kPublishers; ++p)
    for (std::size_t i = 0; i < kPerPublisher; ++i)
      all_names.push_back("w" + std::to_string(p) + "-" + std::to_string(i));

  // Per-publisher publish counts, released after each publish returns, so a
  // reader can pick names it *knows* are in and demand current() finds them.
  std::array<std::atomic<std::size_t>, kPublishers> acked{};
  std::vector<std::thread> publishers;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerPublisher; ++i) {
        const std::string name = "w" + std::to_string(p) + "-" + std::to_string(i);
        registry.publish(name, published);
        // Overwrites interleave with inserts: replace an earlier key so
        // readers race against both trie shapes.
        if (i % 7 == 3)
          registry.publish("w" + std::to_string(p) + "-" + std::to_string(i / 2),
                           published);
        acked[p].store(i + 1, std::memory_order_release);
      }
    });
  }

  std::atomic<std::size_t> reader_failures{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      std::size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t p =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<long long>(kPublishers) - 1));
        const std::size_t n = acked[p].load(std::memory_order_acquire);
        if (n > 0) {
          // Once its publish returned, a name must be findable — in every
          // later map version, not just the one current at publish time.
          const std::size_t i =
              static_cast<std::size_t>(rng.uniform_int(0, static_cast<long long>(n - 1)));
          const auto current =
              registry.current("w" + std::to_string(p) + "-" + std::to_string(i));
          if (current == nullptr || current.get() != published.get())
            reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Read-read coherence on the shard root: sizes a thread observes are
        // monotone because publishes only grow the map.
        const std::size_t size = registry.size();
        if (size < last_size) reader_failures.fetch_add(1, std::memory_order_relaxed);
        last_size = size;
      }
    });
  }

  for (auto& t : publishers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0u);

  // Every publish landed exactly once, readable and iterable.
  EXPECT_EQ(registry.size(), all_names.size());
  std::vector<std::string> expected = all_names;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : all_names)
    EXPECT_NE(registry.current(name), nullptr) << name;
}

TEST(RegistryConcurrency, NamesStreamedDuringPublishesStaysSortedAndMonotone) {
  constexpr std::size_t kNames = 600;
  serving::ModelRegistry registry(4);
  const auto model = quick_model(9);
  const auto published = serving::PublishedModel::make(*model, 1, 1);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> scrape_failures{0};
  std::thread scraper([&] {
    std::vector<std::string> previous;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<std::string> now = registry.names();
      // Byte-stability under concurrent publishes: globally sorted, no
      // duplicates, and monotone — a name can appear, never vanish.
      if (!std::is_sorted(now.begin(), now.end()) ||
          std::adjacent_find(now.begin(), now.end()) != now.end() ||
          !std::includes(now.begin(), now.end(), previous.begin(), previous.end()))
        scrape_failures.fetch_add(1, std::memory_order_relaxed);
      previous = std::move(now);
    }
  });

  Rng shuffle_rng(77);
  std::vector<std::string> order;
  for (std::size_t i = 0; i < kNames; ++i) order.push_back("t" + std::to_string(i));
  std::vector<std::size_t> index = shuffle_rng.permutation(order.size());
  for (const std::size_t i : index) registry.publish(order[i], published);
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(scrape_failures.load(), 0u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(registry.names(), order);
}

}  // namespace
