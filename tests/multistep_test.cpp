// Multivariate sequence inputs, multi-output heads and the direct
// multi-step forecaster built on them.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/model.hpp"
#include "core/multistep.hpp"
#include "nn/adam.hpp"
#include "nn/network.hpp"

namespace {

using namespace ld;

std::vector<double> seasonal(std::size_t n, double period) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        100.0 + 40.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

TEST(SequenceApi, MatchesUnivariateForward) {
  nn::LstmNetwork net({.input_size = 1, .hidden_size = 6, .num_layers = 2}, 3);
  Rng rng(5);
  tensor::Matrix x(4, 7);
  for (double& v : x.flat()) v = rng.uniform();

  std::vector<tensor::Matrix> seq(7, tensor::Matrix(4, 1));
  for (std::size_t t = 0; t < 7; ++t)
    for (std::size_t r = 0; r < 4; ++r) seq[t](r, 0) = x(r, t);

  const auto flat = net.forward(x);
  const tensor::Matrix mat = net.forward_sequence(seq);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(flat[r], mat(r, 0));
}

TEST(SequenceApi, RejectsInconsistentShapes) {
  nn::LstmNetwork net({.input_size = 2, .hidden_size = 4, .num_layers = 1}, 3);
  std::vector<tensor::Matrix> bad{tensor::Matrix(2, 2), tensor::Matrix(3, 2)};
  EXPECT_THROW((void)net.forward_sequence(bad), std::invalid_argument);
  EXPECT_THROW((void)net.forward_sequence({}), std::invalid_argument);
  // Univariate entry point refuses a multivariate network.
  tensor::Matrix x(2, 3);
  EXPECT_THROW((void)net.forward(x), std::logic_error);
}

TEST(SequenceApi, MultivariateGradCheck) {
  // Exactness of BPTT with input_size = 3 and output_size = 2.
  nn::LstmNetwork net(
      {.input_size = 3, .hidden_size = 4, .num_layers = 1, .output_size = 2}, 7);
  Rng rng(9);
  std::vector<tensor::Matrix> seq(4, tensor::Matrix(2, 3));
  for (auto& m : seq)
    for (double& v : m.flat()) v = rng.uniform(-1.0, 1.0);

  const tensor::Matrix out = net.forward_sequence(seq);
  tensor::Matrix dy = out;  // quadratic loss
  net.zero_grad();
  net.backward_matrix(dy);

  auto params = net.parameters();
  auto grads = net.gradients();
  const double eps = 1e-5;
  for (std::size_t s = 0; s < params.size(); ++s) {
    const std::size_t stride = std::max<std::size_t>(1, params[s].size() / 5);
    for (std::size_t i = 0; i < params[s].size(); i += stride) {
      const double orig = params[s][i];
      auto loss = [&] {
        const tensor::Matrix y = net.forward_sequence(seq);
        double l = 0.0;
        for (const double v : y.flat()) l += 0.5 * v * v;
        return l;
      };
      params[s][i] = orig + eps;
      const double lp = loss();
      params[s][i] = orig - eps;
      const double lm = loss();
      params[s][i] = orig;
      EXPECT_NEAR(grads[s][i], (lp - lm) / (2.0 * eps), 2e-5);
    }
  }
}

TEST(SequenceApi, ExogenousFeaturesHelpWhenInformative) {
  // Target = sin(phase) + noise-ish wobble; the phase is supplied as two
  // exogenous features. A multivariate LSTM should use them.
  Rng rng(11);
  const std::size_t n = 400, window = 4;
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(i) / 20.0;
    target[i] = 0.5 + 0.3 * std::sin(phase) + 0.05 * rng.normal();
  }
  auto make_seq = [&](std::size_t start, std::size_t batch, bool with_phase) {
    std::vector<tensor::Matrix> seq(window, tensor::Matrix(batch, with_phase ? 3u : 1u));
    for (std::size_t t = 0; t < window; ++t)
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t i = start + b + t;
        seq[t](b, 0) = target[i];
        if (with_phase) {
          const double phase =
              2.0 * std::numbers::pi * static_cast<double>(i + 1) / 20.0;
          seq[t](b, 1) = std::sin(phase);
          seq[t](b, 2) = std::cos(phase);
        }
      }
    return seq;
  };

  auto train_eval = [&](bool with_phase) {
    nn::LstmNetwork net({.input_size = with_phase ? 3u : 1u, .hidden_size = 8,
                         .num_layers = 1},
                        13);
    nn::Adam adam({.learning_rate = 1e-2});
    auto params = net.parameters();
    auto grads = net.gradients();
    for (std::size_t i = 0; i < params.size(); ++i) adam.attach(params[i], grads[i]);
    const std::size_t train_n = 300 - window;
    for (int epoch = 0; epoch < 30; ++epoch) {
      auto seq = make_seq(0, train_n, with_phase);
      const tensor::Matrix pred = net.forward_sequence(seq);
      tensor::Matrix dy(train_n, 1);
      for (std::size_t b = 0; b < train_n; ++b)
        dy(b, 0) = 2.0 * (pred(b, 0) - target[b + window]) / static_cast<double>(train_n);
      net.zero_grad();
      net.backward_matrix(dy);
      adam.clip_gradients(5.0);
      adam.step();
    }
    // Test MSE on the tail.
    const std::size_t test_n = n - 320 - window;
    auto seq = make_seq(320, test_n, with_phase);
    const tensor::Matrix pred = net.forward_sequence(seq);
    double mse = 0.0;
    for (std::size_t b = 0; b < test_n; ++b) {
      const double err = pred(b, 0) - target[320 + b + window];
      mse += err * err;
    }
    return mse / static_cast<double>(test_n);
  };
  EXPECT_LT(train_eval(true), train_eval(false))
      << "phase features must improve a window too short to infer the phase";
}

TEST(DirectMultiStep, PredictsSeasonalBlockAccurately) {
  const auto series = seasonal(500, 24.0);
  const std::span<const double> all(series);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 40;
  training.trainer.learning_rate = 1e-2;
  const core::Hyperparameters hp{.history_length = 24, .cell_size = 16, .num_layers = 1,
                                 .batch_size = 32};
  const core::DirectMultiStepModel model(all.subspan(0, 360), all.subspan(360, 72), 6, hp,
                                         training, 5);
  EXPECT_LT(model.validation_mape(), 12.0);

  const auto forecast = model.predict(all.subspan(0, 432));
  ASSERT_EQ(forecast.size(), 6u);
  std::vector<double> actual(series.begin() + 432, series.begin() + 438);
  EXPECT_LT(metrics::mape(actual, forecast), 15.0);
}

TEST(DirectMultiStep, BeatsOrMatchesRecursiveAtLongHorizon) {
  // On a noisy seasonal signal, recursive feedback accumulates error while
  // the direct head predicts each step from real data.
  Rng rng(17);
  std::vector<double> series = seasonal(600, 24.0);
  for (double& v : series) v += rng.normal(0.0, 6.0);
  const std::span<const double> all(series);
  const std::size_t horizon = 12;

  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 40;
  training.trainer.learning_rate = 1e-2;
  const core::Hyperparameters hp{.history_length = 24, .cell_size = 16, .num_layers = 1,
                                 .batch_size = 32};

  const core::DirectMultiStepModel direct(all.subspan(0, 420), all.subspan(420, 60), horizon,
                                          hp, training, 5);
  const core::TrainedModel recursive(all.subspan(0, 420), all.subspan(420, 60), hp, training,
                                     5);

  double direct_err = 0.0, recursive_err = 0.0;
  for (std::size_t start = 480; start + horizon <= 600; start += horizon) {
    const auto context = all.subspan(0, start);
    const auto d = direct.predict(context);
    const auto r = recursive.predict_horizon(context, horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      direct_err += std::abs(d[h] - series[start + h]);
      recursive_err += std::abs(r[h] - series[start + h]);
    }
  }
  EXPECT_LT(direct_err, recursive_err * 1.15)
      << "direct multi-step should not lose badly to recursive roll-out";
}

TEST(DirectMultiStep, InputValidation) {
  const auto series = seasonal(100, 10.0);
  const std::span<const double> all(series);
  core::ModelTrainingConfig training;
  training.trainer.max_epochs = 2;
  const core::Hyperparameters hp;
  EXPECT_THROW(
      core::DirectMultiStepModel(all.subspan(0, 60), all.subspan(60), 0, hp, training, 1),
      std::invalid_argument);
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_THROW(core::DirectMultiStepModel(tiny, {}, 4, hp, training, 1),
               std::invalid_argument);
}

}  // namespace
