// End-to-end reproducibility: the repository's claim that a seed pins every
// experiment bit-for-bit. Two independent runs of the full pipeline — trace
// generation, BO search, LSTM training, prediction, simulation — must agree
// exactly; a different seed must diverge.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/cloudinsight.hpp"
#include "cloudsim/autoscaler.hpp"
#include "core/loaddynamics.hpp"
#include "workloads/generators.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace ld;

struct PipelineResult {
  std::vector<double> database_mapes;
  std::vector<double> predictions;
  double turnaround = 0.0;
};

PipelineResult run_pipeline(std::uint64_t seed) {
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kAzure, 60, {.days = 12.0, .seed = seed});
  const workloads::TraceSplit split = workloads::split_trace(trace);

  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.space.history_max = 16;
  cfg.space.cell_max = 8;
  cfg.space.layers_max = 1;
  cfg.max_iterations = 5;
  cfg.initial_random = 3;
  cfg.training.trainer.max_epochs = 8;
  cfg.seed = seed;
  const core::LoadDynamics framework(cfg);
  const core::FitResult fit = framework.fit(split.train, split.validation);

  PipelineResult result;
  for (const auto& rec : fit.database) result.database_mapes.push_back(rec.validation_mape);
  const std::vector<double> series = split.all();
  result.predictions = fit.predictor().predict_series(series, split.test_start());

  cloudsim::AutoScalerConfig sim_cfg;
  sim_cfg.seed = seed;
  result.turnaround =
      cloudsim::simulate(result.predictions, split.test, sim_cfg).avg_turnaround();
  return result;
}

TEST(Determinism, FullPipelineBitExactAcrossRuns) {
  const PipelineResult a = run_pipeline(42);
  const PipelineResult b = run_pipeline(42);
  EXPECT_EQ(a.database_mapes, b.database_mapes)
      << "BO search must explore identical configurations";
  EXPECT_EQ(a.predictions, b.predictions) << "trained model must be bit-identical";
  EXPECT_EQ(a.turnaround, b.turnaround) << "simulation must be bit-identical";
}

TEST(Determinism, DifferentSeedsDiverge) {
  const PipelineResult a = run_pipeline(42);
  const PipelineResult c = run_pipeline(43);
  EXPECT_NE(a.predictions, c.predictions);
}

TEST(Determinism, CloudInsightOnlineLoopReproducible) {
  const workloads::Trace trace =
      workloads::generate(workloads::TraceKind::kLcg, 30, {.days = 6.0, .seed = 9});
  const workloads::TraceSplit split = workloads::split_trace(trace);
  const std::vector<double> series = split.all();
  auto run = [&] {
    baselines::CloudInsightPredictor ci({.light_pool = true});
    return ts::walk_forward(ci, series, split.test_start(), {.refit_every = 5});
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
