// LoadDynamics core: hyperparameter spaces (Table III), single-model
// training, the Fig. 6 workflow and the brute-force comparator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/metrics.hpp"
#include "core/hyperparameters.hpp"
#include "core/loaddynamics.hpp"
#include "core/model.hpp"

namespace {

using namespace ld::core;

std::vector<double> seasonal_series(std::size_t n, double period, double level = 100.0,
                                    double amplitude = 40.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] =
        level + amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  return out;
}

ModelTrainingConfig fast_training() {
  ModelTrainingConfig cfg;
  cfg.trainer.max_epochs = 15;
  cfg.trainer.patience = 4;
  cfg.trainer.learning_rate = 5e-3;
  return cfg;
}

TEST(HyperparameterSpace, PaperDefaultMatchesTableIII) {
  const auto s = HyperparameterSpace::paper_default();
  EXPECT_EQ(s.history_min, 1u);
  EXPECT_EQ(s.history_max, 512u);
  EXPECT_EQ(s.cell_min, 1u);
  EXPECT_EQ(s.cell_max, 100u);
  EXPECT_EQ(s.layers_min, 1u);
  EXPECT_EQ(s.layers_max, 5u);
  EXPECT_EQ(s.batch_min, 16u);
  EXPECT_EQ(s.batch_max, 1024u);
}

TEST(HyperparameterSpace, FacebookRowMatchesTableIII) {
  const auto s = HyperparameterSpace::paper_facebook();
  EXPECT_EQ(s.history_max, 100u);
  EXPECT_EQ(s.cell_max, 50u);
  EXPECT_EQ(s.batch_min, 8u);
  EXPECT_EQ(s.batch_max, 128u);
  EXPECT_EQ(s.layers_max, 5u);  // layer range is shared across all rows
}

TEST(HyperparameterSpace, ValuesRoundTrip) {
  const auto s = HyperparameterSpace::paper_default();
  const Hyperparameters hp{.history_length = 37, .cell_size = 21, .num_layers = 3,
                           .batch_size = 128};
  EXPECT_EQ(s.from_values(s.to_values(hp)), hp);
}

TEST(HyperparameterSpace, SearchSpaceRespectsBounds) {
  const auto space = HyperparameterSpace::paper_default().to_search_space();
  ld::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto values = space.to_values(space.sample_unit(rng));
    EXPECT_GE(values[0], 1.0);
    EXPECT_LE(values[0], 512.0);
    EXPECT_GE(values[1], 1.0);
    EXPECT_LE(values[1], 100.0);
    EXPECT_GE(values[2], 1.0);
    EXPECT_LE(values[2], 5.0);
    EXPECT_GE(values[3], 16.0);
    EXPECT_LE(values[3], 1024.0);
  }
}

TEST(HyperparameterSpace, ClampToDataShrinksHistory) {
  const auto s = HyperparameterSpace::paper_default().clamped_to_data(64);
  EXPECT_LE(s.history_max, 60u);
  EXPECT_THROW((void)HyperparameterSpace::paper_default().clamped_to_data(4),
               std::invalid_argument);
}

TEST(HyperparameterSpace, InvalidRangesThrow) {
  HyperparameterSpace s;
  s.history_min = 10;
  s.history_max = 5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  HyperparameterSpace z;
  z.cell_min = 0;
  EXPECT_THROW(z.validate(), std::invalid_argument);
}

TEST(TrainedModel, LearnsSeasonalSeriesWithLowMape) {
  const auto series = seasonal_series(500, 24.0);
  const std::span<const double> all(series);
  const auto train = all.subspan(0, 300);
  const auto val = all.subspan(300, 100);
  const auto test = all.subspan(400);

  const Hyperparameters hp{.history_length = 24, .cell_size = 16, .num_layers = 1,
                           .batch_size = 32};
  TrainedModel model(train, val, hp, fast_training(), 5);

  EXPECT_LT(model.validation_mape(), 10.0);

  const std::vector<double> preds = model.predict_series(series, 400);
  const double mape = ld::metrics::mape(test, preds);
  EXPECT_LT(mape, 10.0) << "test MAPE too high for a clean seasonal signal";
}

TEST(TrainedModel, PredictNextMatchesPredictSeries) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  const Hyperparameters hp{.history_length = 8, .cell_size = 8, .num_layers = 1,
                           .batch_size = 32};
  TrainedModel model(all.subspan(0, 200), all.subspan(200, 50), hp, fast_training(), 3);

  const std::vector<double> series_preds = model.predict_series(series, 250);
  for (std::size_t i = 0; i < 5; ++i) {
    const double single = model.predict_next(all.subspan(0, 250 + i));
    EXPECT_NEAR(single, series_preds[i], 1e-9);
  }
}

TEST(TrainedModel, HorizonFeedsPredictionsBack) {
  const auto series = seasonal_series(300, 12.0);
  const std::span<const double> all(series);
  const Hyperparameters hp{.history_length = 12, .cell_size = 8, .num_layers = 1,
                           .batch_size = 32};
  TrainedModel model(all.subspan(0, 220), all.subspan(220, 40), hp, fast_training(), 3);
  const auto horizon = model.predict_horizon(all.subspan(0, 260), 10);
  ASSERT_EQ(horizon.size(), 10u);
  for (const double p : horizon) {
    EXPECT_GE(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(TrainedModel, ClampsWindowToShortData) {
  const auto series = seasonal_series(40, 8.0);
  const std::span<const double> all(series);
  const Hyperparameters hp{.history_length = 500, .cell_size = 4, .num_layers = 1,
                           .batch_size = 16};
  // history_length far exceeds the data; construction must still succeed.
  EXPECT_NO_THROW(TrainedModel(all.subspan(0, 30), all.subspan(30), hp, fast_training(), 1));
}

TEST(TrainedModel, RejectsBadInput) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  const Hyperparameters hp;
  EXPECT_THROW(TrainedModel(tiny, {}, hp, fast_training(), 1), std::invalid_argument);
  std::vector<double> bad = seasonal_series(50, 8.0);
  bad[10] = std::nan("");
  EXPECT_THROW(TrainedModel(bad, {}, hp, fast_training(), 1), std::invalid_argument);
}

LoadDynamicsConfig quick_config(std::size_t iters = 8) {
  LoadDynamicsConfig cfg;
  cfg.space = HyperparameterSpace::reduced();
  cfg.space.layers_max = 1;
  cfg.space.cell_max = 16;
  cfg.space.history_max = 24;
  cfg.max_iterations = iters;
  cfg.initial_random = 3;
  cfg.training = fast_training();
  cfg.training.trainer.max_epochs = 8;
  return cfg;
}

TEST(LoadDynamics, WorkflowSelectsBestDatabaseEntry) {
  const auto series = seasonal_series(400, 24.0);
  const std::span<const double> all(series);
  LoadDynamics framework(quick_config());
  const FitResult fit = framework.fit(all.subspan(0, 240), all.subspan(240, 80));

  ASSERT_EQ(fit.database.size(), 8u);
  // best_index really is the argmin of the database.
  for (const ModelRecord& rec : fit.database)
    EXPECT_GE(rec.validation_mape, fit.best_record().validation_mape);
  // The returned model's validation error matches the selected record.
  EXPECT_NEAR(fit.predictor().validation_mape(), fit.best_record().validation_mape, 1e-9);
}

TEST(LoadDynamics, BeatsNaiveMeanOnSeasonalData) {
  const auto series = seasonal_series(420, 24.0);
  const std::span<const double> all(series);
  LoadDynamics framework(quick_config());
  const FitResult fit = framework.fit(all.subspan(0, 260), all.subspan(260, 80));

  const auto test = all.subspan(340);
  const std::vector<double> preds = fit.predictor().predict_series(series, 340);
  const double lstm_mape = ld::metrics::mape(test, preds);

  // Naive forecast: overall mean of the training data.
  double mean = 0.0;
  for (std::size_t i = 0; i < 260; ++i) mean += series[i];
  mean /= 260.0;
  std::vector<double> naive(test.size(), mean);
  const double naive_mape = ld::metrics::mape(test, naive);

  EXPECT_LT(lstm_mape, naive_mape * 0.5)
      << "self-optimized LSTM should easily halve the naive error on seasonal data";
}

TEST(LoadDynamics, RandomAndGridStrategiesRun) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  for (const SearchStrategy strategy : {SearchStrategy::kRandom, SearchStrategy::kGrid}) {
    LoadDynamicsConfig cfg = quick_config(6);
    cfg.strategy = strategy;
    LoadDynamics framework(cfg);
    const FitResult fit = framework.fit(all.subspan(0, 200), all.subspan(200, 60));
    EXPECT_FALSE(fit.database.empty());
    EXPECT_TRUE(std::isfinite(fit.best_record().validation_mape));
  }
}

TEST(LoadDynamics, IncumbentTraceMonotone) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  LoadDynamics framework(quick_config(6));
  const FitResult fit = framework.fit(all.subspan(0, 200), all.subspan(200, 60));
  const auto trace = fit.incumbent_trace();
  for (std::size_t i = 1; i < trace.size(); ++i) EXPECT_LE(trace[i], trace[i - 1]);
}

TEST(BruteForce, SearchesLatticeAndSelectsBest) {
  const auto series = seasonal_series(300, 16.0);
  const std::span<const double> all(series);
  LoadDynamicsConfig cfg = quick_config();
  const FitResult fit =
      brute_force_search(all.subspan(0, 200), all.subspan(200, 60), cfg, /*points_per_dim=*/2);
  EXPECT_GE(fit.database.size(), 8u);   // up to 2^4 minus dedup
  EXPECT_LE(fit.database.size(), 16u);
  for (const ModelRecord& rec : fit.database)
    EXPECT_GE(rec.validation_mape, fit.best_record().validation_mape);
}

TEST(LoadDynamics, InvalidConfigThrows) {
  LoadDynamicsConfig cfg;
  cfg.max_iterations = 0;
  EXPECT_THROW(LoadDynamics{cfg}, std::invalid_argument);
}

}  // namespace
