// GRU layer: exact BPTT gradients (the same finite-difference contract as
// the LSTM) and end-to-end learning through the shared network plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/gru_layer.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace ld;

struct GruCase {
  std::size_t hidden;
  std::size_t layers;
  std::size_t batch;
  std::size_t steps;
};

class GruGradCheck : public ::testing::TestWithParam<GruCase> {};

TEST_P(GruGradCheck, NetworkBpttMatchesFiniteDifference) {
  const GruCase param = GetParam();
  nn::LstmNetwork net({.input_size = 1,
                       .hidden_size = param.hidden,
                       .num_layers = param.layers,
                       .cell = nn::CellType::kGru},
                      41);
  Rng rng(17);
  tensor::Matrix x(param.batch, param.steps);
  for (double& v : x.flat()) v = rng.uniform(-1.0, 1.0);

  const std::vector<double> out = net.forward(x);
  net.zero_grad();
  net.backward(out);  // quadratic loss

  auto params = net.parameters();
  auto grads = net.gradients();
  const double eps = 1e-5;
  std::size_t checked = 0;
  for (std::size_t s = 0; s < params.size(); ++s) {
    const std::size_t stride = std::max<std::size_t>(1, params[s].size() / 7);
    for (std::size_t i = 0; i < params[s].size(); i += stride) {
      const double orig = params[s][i];
      auto loss = [&] {
        double l = 0.0;
        for (const double v : net.forward(x)) l += 0.5 * v * v;
        return l;
      };
      params[s][i] = orig + eps;
      const double lp = loss();
      params[s][i] = orig - eps;
      const double lm = loss();
      params[s][i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double scale = std::max({1.0, std::abs(numeric), std::abs(grads[s][i])});
      EXPECT_NEAR(grads[s][i], numeric, 2e-5 * scale) << "tensor " << s << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GruGradCheck,
                         ::testing::Values(GruCase{3, 1, 2, 4}, GruCase{4, 2, 3, 5},
                                           GruCase{2, 3, 1, 6}, GruCase{5, 1, 4, 3}));

TEST(Gru, LearnsSineWave) {
  std::vector<double> series(400);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 0.5 + 0.4 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0);
  const nn::SlidingWindowDataset train(std::span<const double>(series).subspan(0, 300), 24);
  const nn::SlidingWindowDataset val(std::span<const double>(series).subspan(276), 24);

  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = 16, .num_layers = 1, .cell = nn::CellType::kGru}, 3);
  nn::TrainerConfig tc;
  tc.max_epochs = 40;
  tc.batch_size = 32;
  tc.learning_rate = 5e-3;
  const auto result = nn::train(net, train, &val, tc, 11);
  EXPECT_LT(result.best_validation_loss, 1e-3) << "GRU failed to learn a clean periodic signal";
}

TEST(Gru, ParameterCountMatchesFormula) {
  const std::size_t h = 6;
  nn::LstmNetwork net(
      {.input_size = 1, .hidden_size = h, .num_layers = 1, .cell = nn::CellType::kGru}, 2);
  // GRU layer: 3h*(1) + 3h*h + 3h; head: h + 1.
  const std::size_t expected = (3 * h * 1 + 3 * h * h + 3 * h) + (h + 1);
  EXPECT_EQ(net.parameter_count(), expected);
  // A GRU has 3/4 the recurrent parameters of the LSTM at equal width.
  nn::LstmNetwork lstm({.input_size = 1, .hidden_size = h, .num_layers = 1}, 2);
  EXPECT_LT(net.parameter_count(), lstm.parameter_count());
}

TEST(Gru, CellTypeNames) {
  EXPECT_EQ(nn::cell_type_name(nn::CellType::kGru), "gru");
  EXPECT_EQ(nn::cell_type_from_name("lstm"), nn::CellType::kLstm);
  EXPECT_THROW((void)nn::cell_type_from_name("rnn"), std::invalid_argument);
}

TEST(Gru, SaveLoadRoundTrip) {
  nn::LstmNetworkConfig cfg{.input_size = 1, .hidden_size = 5, .num_layers = 2,
                            .cell = nn::CellType::kGru};
  nn::LstmNetwork a(cfg, 9);
  nn::LstmNetwork b(cfg, 10);
  b.load_weights(a.save_weights());
  Rng rng(4);
  tensor::Matrix x(2, 7);
  for (double& v : x.flat()) v = rng.uniform();
  EXPECT_EQ(a.forward(x), b.forward(x));
}

}  // namespace
