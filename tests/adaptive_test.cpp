// AdaptiveLoadDynamics: drift detection, cooldown, and the headline
// behaviour — recovering accuracy after a regime change that a frozen model
// cannot handle (the paper's Section V motivation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/metrics.hpp"
#include "core/adaptive.hpp"

namespace {

using namespace ld::core;

AdaptiveConfig quick_adaptive() {
  AdaptiveConfig cfg;
  cfg.base.space = HyperparameterSpace::reduced();
  cfg.base.space.history_max = 24;
  cfg.base.space.cell_max = 12;
  cfg.base.space.layers_max = 1;
  cfg.base.max_iterations = 5;
  cfg.base.initial_random = 3;
  cfg.base.training.trainer.max_epochs = 15;
  cfg.base.training.trainer.learning_rate = 1e-2;
  cfg.monitor_window = 16;
  cfg.min_scored = 6;
  cfg.cooldown = 16;
  cfg.degradation_factor = 2.0;
  cfg.absolute_mape_floor = 12.0;
  return cfg;
}

/// Seasonal series whose level jumps 3x at `break_at` — a regime change.
std::vector<double> regime_series(std::size_t n, std::size_t break_at) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double level = i < break_at ? 100.0 : 300.0;
    out[i] = level +
             0.3 * level * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 12.0);
  }
  return out;
}

/// Flat level + deterministic noise jumping 3x at `break_at`. Unlike the
/// seasonal regime_series, the pre-break segment is homogeneous, so the
/// binary-segmentation changepoint detector fires only at the real break.
std::vector<double> noisy_step_series(std::size_t n, std::size_t break_at) {
  std::vector<double> out(n);
  std::uint64_t state = 12345;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise =
        static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53) - 0.5;
    const double level = i < break_at ? 100.0 : 300.0;
    out[i] = level * (1.0 + 0.1 * noise);
  }
  return out;
}

TEST(Adaptive, ChangepointTriggerRetrainsEvenWhenErrorMonitorIsDisabled) {
  const std::size_t break_at = 330;
  const auto series = noisy_step_series(460, break_at);

  AdaptiveConfig cfg = quick_adaptive();
  // Disable the error-drift trigger entirely so only the changepoint
  // detector can queue a retrain.
  cfg.degradation_factor = 1e9;
  cfg.absolute_mape_floor = 1e9;
  cfg.cooldown = 32;
  cfg.changepoint_trigger = true;
  cfg.changepoint_window = 128;

  AdaptiveLoadDynamics with_trigger(cfg);
  with_trigger.fit(std::span<const double>(series).subspan(0, 300));
  for (std::size_t t = 300; t < 420; ++t)
    (void)with_trigger.predict_next(std::span<const double>(series).subspan(0, t));
  EXPECT_GE(with_trigger.retrain_count(), 1u)
      << "mean shift must fire the changepoint trigger";

  // Control: same stream, trigger off -> the disabled error monitor alone
  // must never retrain.
  cfg.changepoint_trigger = false;
  AdaptiveLoadDynamics without_trigger(cfg);
  without_trigger.fit(std::span<const double>(series).subspan(0, 300));
  for (std::size_t t = 300; t < 420; ++t)
    (void)without_trigger.predict_next(std::span<const double>(series).subspan(0, t));
  EXPECT_EQ(without_trigger.retrain_count(), 0u);
}

TEST(Adaptive, PredictsWithoutDriftAndNeverRetrains) {
  const auto series = regime_series(400, 10000);  // no break
  AdaptiveLoadDynamics adaptive(quick_adaptive());
  adaptive.fit(std::span<const double>(series).subspan(0, 300));
  for (std::size_t t = 300; t < 400; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    const double p = adaptive.predict_next(hist);
    EXPECT_TRUE(std::isfinite(p));
  }
  EXPECT_EQ(adaptive.retrain_count(), 0u)
      << "stationary workload must not trigger retraining";
}

TEST(Adaptive, DetectsRegimeChangeAndRecovers) {
  const std::size_t break_at = 330;
  const auto series = regime_series(500, break_at);

  AdaptiveLoadDynamics adaptive(quick_adaptive());
  adaptive.fit(std::span<const double>(series).subspan(0, 300));
  const double baseline = adaptive.baseline_mape();

  std::vector<double> preds;
  for (std::size_t t = 300; t < 500; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    preds.push_back(adaptive.predict_next(hist));
  }
  EXPECT_GE(adaptive.retrain_count(), 1u) << "3x level jump must register as drift";

  // After adaptation, the tail should be predicted decently again.
  const std::span<const double> tail_actual(series.data() + 440, 60);
  const std::span<const double> tail_preds(preds.data() + 140, 60);
  const double tail_mape = ld::metrics::mape(tail_actual, tail_preds);
  EXPECT_LT(tail_mape, std::max(5.0 * baseline, 25.0))
      << "adaptive model should recover after the regime change";
}

TEST(Adaptive, FrozenModelIsWorseAfterRegimeChange) {
  const std::size_t break_at = 330;
  const auto series = regime_series(500, break_at);
  const AdaptiveConfig cfg = quick_adaptive();

  // Frozen: plain LoadDynamics fit, never retrained.
  const LoadDynamics framework(cfg.base);
  const FitResult fit = framework.fit(std::span<const double>(series).subspan(0, 240),
                                      std::span<const double>(series).subspan(240, 60));
  const auto frozen_preds = fit.predictor().predict_series(series, 360);

  AdaptiveLoadDynamics adaptive(cfg);
  adaptive.fit(std::span<const double>(series).subspan(0, 300));
  std::vector<double> adaptive_preds;
  for (std::size_t t = 300; t < 500; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    adaptive_preds.push_back(adaptive.predict_next(hist));
  }

  const std::span<const double> tail(series.data() + 440, 60);
  const std::span<const double> frozen_tail(frozen_preds.data() + 80, 60);
  const std::span<const double> adaptive_tail(adaptive_preds.data() + 140, 60);
  EXPECT_LT(ld::metrics::mape(tail, adaptive_tail), ld::metrics::mape(tail, frozen_tail));
}

TEST(Adaptive, CooldownLimitsRetrainRate) {
  const auto series = regime_series(460, 320);
  AdaptiveConfig cfg = quick_adaptive();
  cfg.cooldown = 1000;  // effectively one retrain max in this window
  AdaptiveLoadDynamics adaptive(cfg);
  adaptive.fit(std::span<const double>(series).subspan(0, 300));
  for (std::size_t t = 300; t < 460; ++t) {
    const auto hist = std::span<const double>(series).subspan(0, t);
    (void)adaptive.predict_next(hist);
  }
  EXPECT_LE(adaptive.retrain_count(), 1u);
}

TEST(Adaptive, UsageErrors) {
  AdaptiveConfig bad = quick_adaptive();
  bad.monitor_window = 0;
  EXPECT_THROW(AdaptiveLoadDynamics{bad}, std::invalid_argument);

  AdaptiveLoadDynamics unfitted(quick_adaptive());
  const std::vector<double> series{1.0, 2.0};
  EXPECT_THROW((void)unfitted.predict_next(series), std::logic_error);
  EXPECT_THROW((void)unfitted.current_hyperparameters(), std::logic_error);
}

}  // namespace
