// Remaining utility coverage: sliding-window dataset edge cases, stopwatch,
// log levels, scaler bounds restoration.
#include <gtest/gtest.h>

#include <thread>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "nn/dataset.hpp"
#include "nn/scaler.hpp"

namespace {

using namespace ld;

TEST(Dataset, WindowsAndTargetsAligned) {
  const std::vector<double> series{1.0, 2.0, 3.0, 4.0, 5.0};
  const nn::SlidingWindowDataset ds(series, 2);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.input(0)[0], 1.0);
  EXPECT_EQ(ds.input(0)[1], 2.0);
  EXPECT_EQ(ds.target(0), 3.0);
  EXPECT_EQ(ds.input(2)[0], 3.0);
  EXPECT_EQ(ds.target(2), 5.0);
}

TEST(Dataset, GatherBuildsBatchMatrix) {
  const std::vector<double> series{10.0, 20.0, 30.0, 40.0, 50.0, 60.0};
  const nn::SlidingWindowDataset ds(series, 3);
  const std::vector<std::size_t> idx{2, 0};
  tensor::Matrix x;
  std::vector<double> y;
  ds.gather(idx, x, y);
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), 3u);
  EXPECT_EQ(x(0, 0), 30.0);  // sample 2: window {30,40,50} -> target 60
  EXPECT_EQ(y[0], 60.0);
  EXPECT_EQ(x(1, 0), 10.0);  // sample 0: window {10,20,30} -> target 40
  EXPECT_EQ(y[1], 40.0);
}

TEST(Dataset, BoundsChecks) {
  const std::vector<double> series{1.0, 2.0, 3.0};
  EXPECT_THROW(nn::SlidingWindowDataset(series, 0), std::invalid_argument);
  EXPECT_THROW(nn::SlidingWindowDataset(series, 3), std::invalid_argument);
  const nn::SlidingWindowDataset ds(series, 2);
  EXPECT_THROW((void)ds.input(1), std::out_of_range);
  EXPECT_THROW((void)ds.target(1), std::out_of_range);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.millis(), 15.0);
  watch.reset();
  EXPECT_LT(watch.millis(), 15.0);
}

TEST(Log, LevelThresholdRespected) {
  const auto saved = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Below-threshold calls are cheap no-ops (just exercising the paths).
  log::debug("hidden ", 1);
  log::info("hidden ", 2);
  log::set_level(saved);
}

TEST(Scaler, FromBoundsMatchesFit) {
  nn::MinMaxScaler fitted;
  fitted.fit(std::vector<double>{10.0, 30.0});
  const nn::MinMaxScaler restored = nn::MinMaxScaler::from_bounds(10.0, 30.0);
  for (const double v : {5.0, 10.0, 20.0, 30.0, 99.0})
    EXPECT_EQ(fitted.transform(v), restored.transform(v));
  EXPECT_THROW((void)nn::MinMaxScaler::from_bounds(5.0, 1.0), std::invalid_argument);
}

TEST(Scaler, UnfittedThrows) {
  const nn::MinMaxScaler scaler;
  EXPECT_THROW((void)scaler.transform(1.0), std::logic_error);
  EXPECT_THROW((void)scaler.inverse(1.0), std::logic_error);
}

}  // namespace
