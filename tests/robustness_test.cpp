// Failure injection and degenerate-input robustness across the stack:
// constant traces, zero-heavy traces, extreme magnitudes, and adversarial
// configurations must either work or fail with a clear exception — never
// produce NaNs or crash.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cloudinsight.hpp"
#include "baselines/cloudscale.hpp"
#include "baselines/wood.hpp"
#include "core/loaddynamics.hpp"
#include "nn/scaler.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace ld;

core::LoadDynamicsConfig micro_config() {
  core::LoadDynamicsConfig cfg;
  cfg.space = core::HyperparameterSpace::reduced();
  cfg.space.history_max = 8;
  cfg.space.cell_max = 8;
  cfg.space.layers_max = 1;
  cfg.max_iterations = 3;
  cfg.initial_random = 2;
  cfg.training.trainer.max_epochs = 5;
  return cfg;
}

TEST(Robustness, ConstantTraceThroughWholePipeline) {
  const std::vector<double> constant(120, 42.0);
  const std::span<const double> all(constant);

  core::LoadDynamics framework(micro_config());
  const core::FitResult fit = framework.fit(all.subspan(0, 80), all.subspan(80, 20));
  const double p = fit.predictor().predict_next(all.subspan(0, 100));
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_NEAR(p, 42.0, 15.0);  // constant series: the scaler collapses, stay sane
}

TEST(Robustness, ZeroHeavyTracePredictorsStayFinite) {
  // A workload that is idle most of the time (many zero JARs).
  std::vector<double> series(200, 0.0);
  for (std::size_t i = 0; i < series.size(); i += 7) series[i] = 10.0;

  baselines::CloudScalePredictor cs;
  baselines::WoodPredictor wood;
  baselines::CloudInsightPredictor ci({.light_pool = true});
  for (ts::Predictor* p : std::initializer_list<ts::Predictor*>{&cs, &wood, &ci}) {
    p->fit(std::span<const double>(series).subspan(0, 150));
    for (std::size_t t = 150; t < 170; ++t) {
      const double v = p->predict_next(std::span<const double>(series).subspan(0, t));
      EXPECT_TRUE(std::isfinite(v)) << p->name() << " at t=" << t;
    }
  }
}

TEST(Robustness, ExtremeMagnitudesDoNotOverflow) {
  // Wikipedia-like magnitudes (1e7 per interval).
  std::vector<double> series(150);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 1e7 + 2e6 * std::sin(static_cast<double>(i) / 5.0);
  const std::span<const double> all(series);

  core::LoadDynamics framework(micro_config());
  const core::FitResult fit = framework.fit(all.subspan(0, 100), all.subspan(100, 30));
  const double p = fit.predictor().predict_next(all.subspan(0, 130));
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 1e6);
  EXPECT_LT(p, 1e8);
}

TEST(Robustness, TinyMagnitudesSurvive) {
  std::vector<double> series(150);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 0.002 + 0.001 * std::sin(static_cast<double>(i) / 4.0);
  const std::span<const double> all(series);
  core::LoadDynamics framework(micro_config());
  const core::FitResult fit = framework.fit(all.subspan(0, 100), all.subspan(100, 30));
  EXPECT_TRUE(std::isfinite(fit.predictor().predict_next(all.subspan(0, 130))));
}

TEST(Robustness, ScalerConstantInputMapsToZero) {
  nn::MinMaxScaler scaler;
  scaler.fit(std::vector<double>{5.0, 5.0, 5.0});
  EXPECT_EQ(scaler.transform(5.0), 0.0);
  EXPECT_EQ(scaler.inverse(scaler.transform(5.0)), 5.0);
}

TEST(Robustness, ScalerExtrapolatesOutOfRangeInvertibly) {
  nn::MinMaxScaler scaler;
  scaler.fit(std::vector<double>{10.0, 20.0});
  // A test-time value far beyond the training range must round-trip.
  EXPECT_NEAR(scaler.inverse(scaler.transform(500.0)), 500.0, 1e-9);
  EXPECT_NEAR(scaler.inverse(scaler.transform(-300.0)), -300.0, 1e-9);
}

TEST(Robustness, HyperparametersLargerThanDataAreClamped) {
  std::vector<double> series(40);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = 10.0 + static_cast<double>(i % 5);
  const std::span<const double> all(series);

  core::LoadDynamicsConfig cfg = micro_config();
  cfg.space.history_min = 1;
  cfg.space.history_max = 512;   // far larger than 28 training points
  cfg.space.batch_min = 16;
  cfg.space.batch_max = 1024;
  core::LoadDynamics framework(cfg);
  EXPECT_NO_THROW({
    const core::FitResult fit = framework.fit(all.subspan(0, 28), all.subspan(28, 8));
    (void)fit.predictor().predict_next(all);
  });
}

TEST(Robustness, WalkForwardWithHistoryShorterThanModels) {
  // All baselines must degrade gracefully when asked to predict with almost
  // no history (fallback paths).
  const std::vector<double> tiny{5.0, 7.0, 6.0};
  baselines::WoodPredictor wood;
  baselines::CloudScalePredictor cs;
  wood.fit(tiny);
  cs.fit(tiny);
  EXPECT_TRUE(std::isfinite(wood.predict_next(tiny)));
  EXPECT_TRUE(std::isfinite(cs.predict_next(tiny)));
}

TEST(Robustness, TraceAggregationOfEmptyIntervalCount) {
  workloads::Trace minutely;
  minutely.name = "m";
  minutely.interval_minutes = 1;
  minutely.jars = {1.0, 2.0};
  const workloads::Trace agg = workloads::aggregate(minutely, 5);
  EXPECT_TRUE(agg.jars.empty());  // no full interval fits
  EXPECT_THROW(workloads::validate_trace(agg), std::invalid_argument);
}

TEST(Robustness, SplitTooShortThrowsNotCrashes) {
  workloads::Trace t;
  t.name = "t";
  t.interval_minutes = 5;
  t.jars = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)workloads::split_trace(t), std::invalid_argument);
}

}  // namespace
