// Linear algebra: GEMM variants against naive reference, Cholesky/LU/lstsq
// correctness, property sweeps over random SPD matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/linalg.hpp"
#include "tensor/matrix.hpp"

namespace {

using ld::Rng;
using namespace ld::tensor;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (double& v : m.flat()) v = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd(n, n);
  matmul_a_bt_into(a, a, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;  // ensure positive definite
  return spd;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

void expect_matrix_near(const Matrix& a, const Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_NEAR(a(i, j), b(i, j), tol);
}

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(1);
  const Matrix m = random_matrix(3, 5, rng);
  expect_matrix_near(m.transposed().transposed(), m, 0.0);
}

TEST(Matrix, ArithmeticShapeChecks) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)matmul(a, a), std::invalid_argument);
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73 + k * 7 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix expected = naive_matmul(a, b);

  expect_matrix_near(matmul(a, b), expected, 1e-12);

  Matrix c1(m, n);
  matmul_into(a, b, c1);
  expect_matrix_near(c1, expected, 1e-12);

  // A^T * B through matmul_at_b_into.
  Matrix c2(m, n);
  matmul_at_b_into(a.transposed(), b, c2);
  expect_matrix_near(c2, expected, 1e-12);

  // A * B^T through matmul_a_bt_into.
  Matrix c3(m, n);
  matmul_a_bt_into(a, b.transposed(), c3);
  expect_matrix_near(c3, expected, 1e-12);

  // Accumulation semantics.
  Matrix c4 = expected;
  matmul_into(a, b, c4, /*accumulate=*/true);
  Matrix doubled = expected;
  doubled *= 2.0;
  expect_matrix_near(c4, doubled, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{5, 5, 5}, std::tuple{7, 1, 3},
                                           std::tuple{16, 8, 4}, std::tuple{33, 17, 9}));

TEST(Matrix, MatvecMatchesMatmul) {
  Rng rng(9);
  const Matrix a = random_matrix(4, 6, rng);
  std::vector<double> x(6);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  Matrix xm(6, 1);
  for (std::size_t i = 0; i < 6; ++i) xm(i, 0) = x[i];
  const auto y = matvec(a, x);
  const Matrix ym = matmul(a, xm);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-12);
}

class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, ReconstructsRandomSpd) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 9;
  const Matrix a = random_spd(n, rng);
  const Matrix l = cholesky(a);
  Matrix recon(n, n);
  matmul_a_bt_into(l, l, recon);
  expect_matrix_near(recon, a, 1e-9);
  // L is lower triangular with positive diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(l(i, i), 0.0);
    for (std::size_t j = i + 1; j < n; ++j) EXPECT_EQ(l(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyProperty, ::testing::Range(1, 13));

TEST(Cholesky, RejectsIndefinite) {
  const Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW((void)cholesky(m), std::domain_error);
}

class SolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveProperty, SpdAndLuRecoverSolution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 7;
  const Matrix a = random_spd(n, rng);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
  const std::vector<double> b = matvec(a, x_true);

  const auto x_spd = solve_spd(a, b);
  const auto x_lu = solve_lu(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_spd[i], x_true[i], 1e-8);
    EXPECT_NEAR(x_lu[i], x_true[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveProperty, ::testing::Range(1, 11));

TEST(SolveLu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)solve_lu(a, {1.0, 2.0}), std::domain_error);
}

TEST(Lstsq, RecoversExactLinearModel) {
  Rng rng(17);
  const std::size_t n = 50;
  Matrix design(n, 3);
  std::vector<double> y(n);
  const double beta[3] = {2.0, -1.5, 0.75};
  for (std::size_t i = 0; i < n; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = rng.uniform(-1.0, 1.0);
    design(i, 2) = rng.uniform(-1.0, 1.0);
    y[i] = beta[0] + beta[1] * design(i, 1) + beta[2] * design(i, 2);
  }
  const auto est = lstsq(design, y);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(est[j], beta[j], 1e-5);
}

TEST(Lstsq, OverdeterminedMinimizesResidual) {
  // y = 2x with noise; slope estimate must sit near 2.
  Rng rng(23);
  const std::size_t n = 200;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    design(i, 0) = 1.0;
    design(i, 1) = x;
    y[i] = 2.0 * x + rng.normal(0.0, 0.1);
  }
  const auto est = lstsq(design, y);
  EXPECT_NEAR(est[1], 2.0, 0.05);
}

TEST(Linalg, LogdetMatchesDirectComputation) {
  Rng rng(29);
  const Matrix a = random_spd(4, rng);
  const Matrix l = cholesky(a);
  // det(A) via the product of L diagonal squared.
  double det = 1.0;
  for (std::size_t i = 0; i < 4; ++i) det *= l(i, i) * l(i, i);
  EXPECT_NEAR(logdet_from_cholesky(l), std::log(det), 1e-9);
}

TEST(Linalg, VectorHelpers) {
  const std::vector<double> a{1.0, 2.0, 3.0}, b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_EQ(y, (std::vector<double>{3.0, 5.0, 7.0}));
}

}  // namespace
